//! A minimal JSON value type for experiment output.
//!
//! The offline build cannot fetch `serde_json`, and the experiment
//! machinery only ever *emits* JSON (one object per table row, plus the
//! `BENCH_*.json` artifacts). This module provides exactly that: a
//! [`Value`] enum with correct serialization, convenient construction and
//! the comparison/indexing sugar the tests use.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized like serde_json: integers without a point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Insert (or replace) a key in an object. Panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let Value::Object(entries) = self else {
            panic!("insert on non-object JSON value");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_round() {
        let mut v = Value::object();
        v.insert("name", "ab\"c");
        v.insert("n", 3u64);
        v.insert("rate", 1.5);
        v.insert("ok", true);
        v.insert("list", vec![1u64, 2]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"ab\"c","n":3,"rate":1.5,"ok":true,"list":[1,2]}"#
        );
    }

    #[test]
    fn indexing_and_comparisons() {
        let mut v = Value::object();
        v.insert("k", "x");
        v.insert("v", 1.5);
        assert_eq!(v["k"], "x");
        assert_eq!(v["v"], 1.5);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut v = Value::object();
        v.insert("a", 1u64);
        v.insert("a", 2u64);
        assert_eq!(v["a"], 2.0);
        assert_eq!(v.to_string(), r#"{"a":2}"#);
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::String("a\nb\u{1}".into());
        assert_eq!(v.to_string(), "\"a\\nb\\u0001\"");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn insert_on_scalar_panics() {
        Value::Bool(true).insert("k", 1u64);
    }
}
