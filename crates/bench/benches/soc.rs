//! Criterion micro-benchmarks of the soft core: instructions per second of
//! the interpreter (which bounds how much firmware a simulation can carry)
//! and assembler throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netfpga_soc::{assemble, SoftCore};
use std::hint::black_box;

fn busy_loop_program() -> Vec<netfpga_soc::Instr> {
    assemble(
        r"
        loop:
            addi r1, r1, 1
            xor  r2, r2, r1
            slli r3, r1, 3
            srli r4, r3, 2
            bne  r1, r5, loop
            halt
        ",
    )
    .unwrap()
}

fn bench_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("soc");
    let program = busy_loop_program();
    let iters = 10_000u32;
    g.throughput(Throughput::Elements(u64::from(iters) * 5));
    g.bench_function("execute_50k_instructions", |b| {
        b.iter(|| {
            let mut cpu = SoftCore::new("bench", program.clone(), 64, None, 1);
            cpu.set_reg(5, iters);
            cpu.run_to_halt(u64::from(iters) * 5 + 10);
            black_box(cpu.reg(2))
        })
    });
    g.finish();
}

fn bench_assemble(c: &mut Criterion) {
    // A long-ish program: the watchdog repeated many times.
    let unit = r"
        li r1, 0x40001004
        lw r5, (r1)
        sw r5, 4(r1)
        bne r5, r0, l{i}
    l{i}:
        addi r6, r6, 1
    ";
    let source: String = (0..100)
        .map(|i| unit.replace("{i}", &i.to_string()))
        .collect::<Vec<_>>()
        .join("\n")
        + "\nhalt\n";
    c.bench_function("soc/assemble_600_lines", |b| {
        b.iter(|| assemble(black_box(&source)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_execute, bench_assemble
}
criterion_main!(benches);
