//! Criterion micro-benchmarks of the datapath building blocks: simulator
//! cost per cycle/packet of the arbiter, stage shell, queues, schedulers
//! and LPM — the hot loops of every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netfpga_core::packetio::{PacketSink, PacketSource};
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::sim::Simulator;
use netfpga_core::stream::{Meta, PortMask, Stream};
use netfpga_core::time::Frequency;
use netfpga_datapath::lpm::{LpmTable, RouteEntry};
use netfpga_datapath::sched::{DeficitRoundRobin, QueueView, Scheduler, WeightedFair};
use netfpga_datapath::stage::{PacketStage, StageAction};
use netfpga_datapath::InputArbiter;
use netfpga_packet::{Ipv4Address, Ipv4Cidr};
use std::hint::black_box;

/// Simulate `npackets` 512-byte packets through arbiter -> stage -> sink;
/// returns simulated packet count (for throughput accounting).
fn pipeline_run(npackets: u64) -> u64 {
    let mut sim = Simulator::new();
    let clk = sim.add_clock("core", Frequency::mhz(200));
    let (a_tx, a_rx) = Stream::new(32, 32);
    let (s_tx, s_rx) = Stream::new(32, 32);
    let (src, inject) = PacketSource::new("src", a_tx);
    let arb = InputArbiter::new("arb", vec![a_rx], s_tx);
    let (o_tx, o_rx) = Stream::new(32, 32);
    let stage = PacketStage::new(
        "stage",
        s_rx,
        o_tx,
        4,
        |_p: &mut PktBuf, m: &mut Meta, _t| {
            m.dst_ports = PortMask::single(0);
            StageAction::Forward
        },
    );
    let (sink, cap) = PacketSink::new("sink", o_rx);
    sim.add_module(clk, src);
    sim.add_module(clk, arb);
    sim.add_module(clk, stage);
    sim.add_module(clk, sink);
    for _ in 0..npackets {
        inject.push(vec![0u8; 512], 0);
    }
    while cap.total_packets() < npackets {
        sim.run_cycles(clk, 256);
    }
    cap.total_packets()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath/pipeline");
    g.throughput(Throughput::Elements(64));
    g.bench_function("arbiter_stage_sink_64pkt_512B", |b| {
        b.iter(|| black_box(pipeline_run(64)))
    });
    g.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath/lpm");
    for routes in [64usize, 4096] {
        let mut t = LpmTable::new();
        let mut x = 0x12345678u32;
        for i in 0..routes {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            t.insert(
                Ipv4Cidr::new(Ipv4Address::from_u32(x), 8 + (i % 25) as u8),
                RouteEntry {
                    next_hop: Ipv4Address::UNSPECIFIED,
                    port: (i % 4) as u8,
                },
            );
        }
        let mut probe = 0u32;
        g.bench_function(format!("lookup_{routes}_routes"), |b| {
            b.iter(|| {
                probe = probe.wrapping_add(0x01010101);
                black_box(t.lookup(Ipv4Address::from_u32(probe)))
            })
        });
    }
    g.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath/sched");
    let views = [
        QueueView {
            packets: 10,
            head_bytes: Some(1500),
        },
        QueueView {
            packets: 5,
            head_bytes: Some(64),
        },
        QueueView {
            packets: 0,
            head_bytes: None,
        },
        QueueView {
            packets: 2,
            head_bytes: Some(512),
        },
    ];
    let mut drr = DeficitRoundRobin::new(4, 1500);
    g.bench_function("drr_select", |b| {
        b.iter(|| {
            let i = drr.select(black_box(&views)).unwrap();
            drr.on_dequeue(i, 64);
            i
        })
    });
    let mut wfq = WeightedFair::equal(4);
    for q in 0..4 {
        for _ in 0..16 {
            wfq.on_enqueue(q, 512);
        }
    }
    g.bench_function("wfq_select", |b| {
        b.iter(|| {
            let i = wfq.select(black_box(&views)).unwrap();
            wfq.on_dequeue(i, 512);
            wfq.on_enqueue(i, 512);
            i
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline, bench_lpm, bench_schedulers
}
criterion_main!(benches);
