//! Criterion micro-benchmarks of the simulation kernel itself: edges per
//! second through a full reference-switch chassis, naive stepper vs the
//! fast path (calendar/heap scheduling + quiescence skipping + bursts).
//! Small iteration counts keep `--test` mode (the CI smoke step) quick;
//! `exp10_kernel` produces the headline numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netfpga_bench::kernel::{idle_heavy, saturated, KernelConfig};
use std::hint::black_box;

fn bench_idle_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/idle_heavy");
    // 10 rounds x 50 us at 200 MHz = 100k edges per iteration.
    g.throughput(Throughput::Elements(100_000));
    for config in [KernelConfig::Naive, KernelConfig::Fast] {
        g.bench_function(config.label(), |b| {
            b.iter(|| black_box(idle_heavy(config, 10).edges))
        });
    }
    g.finish();
}

fn bench_saturated(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/saturated");
    for config in [KernelConfig::Naive, KernelConfig::Fast] {
        g.bench_function(config.label(), |b| {
            b.iter(|| black_box(saturated(config, 100).edges))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_idle_heavy, bench_saturated);
criterion_main!(benches);
