//! Criterion micro-benchmarks: wire-format parse/emit and checksums —
//! the per-packet work every lookup stage performs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netfpga_datapath::ParsedHeaders;
use netfpga_packet::checksum;
use netfpga_packet::ipv4::Ipv4Packet;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use std::hint::black_box;

fn frame(len: usize) -> Vec<u8> {
    PacketBuilder::new()
        .eth(
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 1, 1))
        .udp(4000, 5000, &[])
        .pad_to(len)
        .build()
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/parse");
    for len in [60usize, 512, 1514] {
        let f = frame(len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("headers_{len}B"), |b| {
            b.iter(|| ParsedHeaders::parse(black_box(&f)))
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    c.bench_function("packet/build_udp_1514B", |b| {
        b.iter(|| frame(black_box(1514)))
    });
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/checksum");
    let data = vec![0xa5u8; 1500];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("full_1500B", |b| {
        b.iter(|| checksum::checksum(black_box(&data)))
    });
    g.bench_function("incremental_ttl", |b| {
        b.iter(|| {
            checksum::ttl_decrement_update(black_box(0x1234), 64, netfpga_packet::IpProtocol::Udp)
        })
    });
    g.finish();
}

fn bench_fcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/fcs");
    for len in [64usize, 512, 1514] {
        let data = vec![0xa5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("slice_by_8_{len}B"), |b| {
            b.iter(|| netfpga_packet::fcs::crc32(black_box(&data)))
        });
        g.bench_function(format!("one_table_{len}B"), |b| {
            b.iter(|| netfpga_packet::fcs::crc32_table(black_box(&data)))
        });
        g.bench_function(format!("bitwise_{len}B"), |b| {
            b.iter(|| netfpga_packet::fcs::crc32_bitwise(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_ttl_decrement(c: &mut Criterion) {
    let f = frame(1514);
    c.bench_function("packet/router_rewrite_ttl", |b| {
        b.iter_batched(
            || f.clone(),
            |mut frame| {
                let mut ip = Ipv4Packet::new_unchecked(&mut frame[14..]);
                ip.decrement_ttl();
                frame
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_parse, bench_build, bench_checksum, bench_fcs, bench_ttl_decrement
}
criterion_main!(benches);
