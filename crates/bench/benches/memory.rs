//! Criterion micro-benchmarks of the memory substrates: cost of simulating
//! one cycle/access of each model (simulator performance, not device
//! performance — device timing is measured by experiment E3).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netfpga_core::rng::SimRng;
use netfpga_core::time::Time;
use netfpga_mem::{
    AgingTable, Bram, ByteFifo, Cam, Dram, DramConfig, DramRequest, Sram, SramConfig, Tcam,
    TcamEntry, TernaryKey,
};
use std::hint::black_box;

fn bench_sram(c: &mut Criterion) {
    c.bench_function("mem/sram_issue_tick_collect", |b| {
        let mut s: Sram<u64> = Sram::new(SramConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            s.issue_read(i, (i % 65536) as usize);
            s.tick();
            i += 1;
            black_box(s.collect_read())
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sequential_line", |b| {
        let mut d = Dram::new(DramConfig::default());
        let mut addr = 0u64;
        let mut done = 0u64;
        b.iter(|| {
            if d.submit(DramRequest {
                tag: addr,
                addr: addr * 64,
                write: None,
            }) {
                addr += 1;
            }
            d.tick();
            while d.collect().is_some() {
                done += 1;
            }
            black_box(done)
        })
    });
    g.finish();
}

fn bench_bram(c: &mut Criterion) {
    c.bench_function("mem/bram_read_cycle", |b| {
        let mut m: Bram<u64> = Bram::new(4096);
        let mut i = 0usize;
        b.iter(|| {
            m.issue_read(i % 4096);
            m.tick();
            i += 1;
            black_box(m.read_data().copied())
        })
    });
}

fn bench_fifo(c: &mut Criterion) {
    c.bench_function("mem/byte_fifo_push_pop", |b| {
        let mut f: ByteFifo<u64> = ByteFifo::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            f.push(1500, i);
            i += 1;
            black_box(f.pop())
        })
    });
}

fn bench_cam_tcam(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/match");
    let mut cam: Cam<u64, u8> = Cam::new(1024);
    for i in 0..1024u64 {
        cam.insert(i, i as u8);
    }
    g.bench_function("cam_1024_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            black_box(cam.lookup(&i))
        })
    });
    for rules in [64usize, 1024] {
        let mut tcam: Tcam<u8> = Tcam::new(rules, 28);
        for i in 0..rules {
            let mut v = [0u8; 28];
            v[26..28].copy_from_slice(&(i as u16).to_be_bytes());
            tcam.insert(TcamEntry {
                key: TernaryKey::exact(&v),
                priority: i as u32,
                value: 0,
            });
        }
        let mut probe = [0u8; 28];
        probe[26..28].copy_from_slice(&7u16.to_be_bytes());
        g.bench_function(format!("tcam_{rules}_lookup"), |b| {
            b.iter(|| black_box(tcam.lookup(&probe).copied()))
        });
    }
    g.finish();
}

fn bench_aging(c: &mut Criterion) {
    c.bench_function("mem/aging_table_lookup", |b| {
        let mut t: AgingTable<u64, u8> = AgingTable::new(4096, Time::from_ms(100));
        let mut rng = SimRng::new(1);
        for i in 0..2048u64 {
            t.insert(i, 0, Time::ZERO);
        }
        b.iter(|| {
            let k = rng.below(2048);
            black_box(t.lookup(&k, Time::from_us(1)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sram, bench_dram, bench_bram, bench_fifo, bench_cam_tcam, bench_aging
}
criterion_main!(benches);
