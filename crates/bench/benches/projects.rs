//! Criterion benchmarks of whole projects: simulator cost of pushing a
//! burst of frames end-to-end through each reference design (wall-clock
//! cost per simulated packet — the number that bounds experiment scale).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netfpga_bench::workloads::{mac, udp_frame};
use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::lpm::RouteEntry;
use netfpga_packet::Ipv4Address;
use netfpga_projects::{AcceptanceTest, BlueSwitch, ReferenceRouter, ReferenceSwitch};
use std::hint::black_box;

const BURST: usize = 32;

fn bench_acceptance(c: &mut Criterion) {
    let mut g = c.benchmark_group("projects");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("acceptance_burst", |b| {
        b.iter(|| {
            let mut a = AcceptanceTest::new(&BoardSpec::sume(), 2);
            let f = udp_frame(512, 1, 0);
            for _ in 0..BURST {
                a.chassis.send(0, f.clone());
            }
            a.chassis.run_for(Time::from_us(40));
            black_box(a.chassis.recv(0).len())
        })
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("projects");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("reference_switch_burst", |b| {
        b.iter(|| {
            let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(10));
            let f = udp_frame(512, 1, 0);
            for _ in 0..BURST {
                sw.chassis.send(0, f.clone());
            }
            sw.chassis.run_for(Time::from_us(60));
            black_box(sw.chassis.recv(1).len())
        })
    });
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("projects");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("reference_router_burst", |b| {
        b.iter(|| {
            let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
            {
                let mut t = r.tables.borrow_mut();
                t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
                t.lpm.insert(
                    "10.0.100.0/24".parse().unwrap(),
                    RouteEntry {
                        next_hop: Ipv4Address::UNSPECIFIED,
                        port: 1,
                    },
                );
                t.arp.insert(Ipv4Address::new(10, 0, 100, 2), mac(0xb0));
            }
            let mut r = r;
            let f = udp_frame(512, 0, 0);
            for _ in 0..BURST {
                r.chassis.send(0, f.clone());
            }
            r.chassis.run_for(Time::from_us(60));
            black_box(r.chassis.recv(1).len())
        })
    });
    g.finish();
}

fn bench_blueswitch(c: &mut Criterion) {
    let mut g = c.benchmark_group("projects");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("blueswitch_burst", |b| {
        b.iter(|| {
            let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 2, 64);
            sw.pipeline.borrow_mut().write_direct(
                0,
                netfpga_mem::TcamEntry {
                    key: netfpga_mem::TernaryKey::wildcard(netfpga_projects::blueswitch::KEY_WIDTH),
                    priority: 0,
                    value: netfpga_projects::blueswitch::FlowAction {
                        kind: netfpga_projects::blueswitch::ActionKind::Output(
                            netfpga_core::stream::PortMask::single(1),
                        ),
                        tag: 1,
                    },
                },
            );
            let f = udp_frame(512, 1, 0);
            for _ in 0..BURST {
                sw.chassis.send(0, f.clone());
            }
            sw.chassis.run_for(Time::from_us(60));
            black_box(sw.chassis.recv(1).len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_acceptance, bench_switch, bench_router, bench_blueswitch
}
criterion_main!(benches);
