//! The count-min sketch: fixed-memory per-flow counting with a provable
//! overestimation bound.
//!
//! A `depth × width` array of counters; each row increments one cell,
//! and the estimate is the minimum over rows, so it **never
//! underestimates**. Classic CM analysis bounds the overestimate by `εN`
//! with `ε = e / width` (`N` = total recorded count) with probability
//! `1 − e^−depth` per flow — the bound `exp14_flowmon` sweeps and the
//! property tests pin.
//!
//! Row indices come from Kirsch–Mitzenmacher double hashing — the way
//! hardware sketches avoid one hash unit per row: a single seeded
//! 64-bit hash of the key is split into `h1`/`h2`, and row `i` uses
//! `h1 + i·h2 (mod width)`. One hash per update regardless of depth,
//! and a depth-`d` sketch's rows are a prefix of a deeper sketch's with
//! the same seed (pinned by the E14 domination check).

use crate::flow::FiveTuple;
use netfpga_core::rng::SimRng;

/// Sketch dimensions and hash seed. Sizes are plain runtime values so
/// tests can sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Counters per row. `ε = e / width`.
    pub width: usize,
    /// Independent hash rows. Failure probability `δ = e^−depth` per flow.
    pub depth: usize,
    /// Seed for the per-row hash salts.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        SketchConfig {
            width: 1024,
            depth: 4,
            seed: 0xf10f_10f1,
        }
    }
}

/// The sketch itself. See module docs.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    config: SketchConfig,
    /// Salt for the single per-update key hash, drawn from the seeded RNG.
    salt: u64,
    /// `depth` rows of `width` counters, flattened row-major.
    cells: Vec<u64>,
    /// Total count recorded (the `N` in the `εN` bound).
    total: u64,
}

impl CountMinSketch {
    /// An empty sketch of the given dimensions.
    pub fn new(config: SketchConfig) -> CountMinSketch {
        assert!(config.width > 0 && config.depth > 0, "degenerate sketch");
        let mut rng = SimRng::new(config.seed);
        let salt = rng.next_u64();
        CountMinSketch {
            config,
            salt,
            cells: vec![0; config.width * config.depth],
            total: 0,
        }
    }

    /// The double-hash pair for `key`: one seeded 64-bit hash split into
    /// `h1` (row 0 position) and an odd `h2` (per-row stride).
    #[inline]
    fn hash_pair(&self, key: &[u8; 13]) -> (u64, u64) {
        let h = hash_key(key, self.salt);
        (h >> 32, (h & 0xffff_ffff) | 1)
    }

    /// The dimensions this sketch was built with.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Record `count` occurrences of `flow`; returns the new estimate
    /// (minimum over rows after the increment).
    pub fn record(&mut self, flow: &FiveTuple, count: u64) -> u64 {
        let (h1, h2) = self.hash_pair(&flow.key_bytes());
        let mut est = u64::MAX;
        for row in 0..self.config.depth {
            let col = h1.wrapping_add((row as u64).wrapping_mul(h2)) % self.config.width as u64;
            let cell = &mut self.cells[row * self.config.width + col as usize];
            *cell += count;
            est = est.min(*cell);
        }
        self.total += count;
        est
    }

    /// Point estimate for `flow`: minimum over rows. Always `≥` the true
    /// count recorded for that flow.
    pub fn estimate(&self, flow: &FiveTuple) -> u64 {
        let (h1, h2) = self.hash_pair(&flow.key_bytes());
        (0..self.config.depth)
            .map(|row| {
                let col = h1.wrapping_add((row as u64).wrapping_mul(h2)) % self.config.width as u64;
                self.cells[row * self.config.width + col as usize]
            })
            .min()
            .unwrap_or(0)
    }

    /// Total count recorded across all flows.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The classic CM `ε`: `e / width`.
    pub fn epsilon(&self) -> f64 {
        core::f64::consts::E / self.config.width as f64
    }

    /// The absolute overestimation bound `⌈εN⌉` at the current total.
    pub fn error_bound(&self) -> u64 {
        (self.epsilon() * self.total as f64).ceil() as u64
    }

    /// Zero every cell and the total.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// FNV-1a over the key bytes seeded with the sketch salt, finished with
/// a 64-bit avalanche so both 32-bit halves are well mixed — the single
/// hash unit the double-hashing scheme derives every row index from.
fn hash_key(key: &[u8; 13], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a00_0000 | i,
            dst_ip: 0x0a01_0000 | i,
            src_port: (1000 + i) as u16,
            dst_port: 80,
            proto: 17,
        }
    }

    #[test]
    fn estimate_never_underestimates() {
        let mut cm = CountMinSketch::new(SketchConfig {
            width: 32,
            depth: 3,
            seed: 7,
        });
        for i in 0..100u32 {
            cm.record(&flow(i % 10), 1 + u64::from(i % 3));
        }
        let mut truth = [0u64; 10];
        for i in 0..100u32 {
            truth[(i % 10) as usize] += 1 + u64::from(i % 3);
        }
        for (i, &t) in truth.iter().enumerate() {
            assert!(cm.estimate(&flow(i as u32)) >= t, "flow {i} underestimated");
        }
        assert_eq!(cm.total(), truth.iter().sum::<u64>());
    }

    #[test]
    fn wide_sketch_is_exact_for_few_flows() {
        let mut cm = CountMinSketch::new(SketchConfig {
            width: 4096,
            depth: 4,
            seed: 1,
        });
        for i in 0..8u32 {
            for _ in 0..=i {
                cm.record(&flow(i), 1);
            }
        }
        for i in 0..8u32 {
            assert_eq!(cm.estimate(&flow(i)), u64::from(i) + 1);
        }
        assert_eq!(cm.estimate(&flow(99)), 0, "unseen flow");
    }

    #[test]
    fn seeded_rebuild_is_bit_identical() {
        let cfg = SketchConfig {
            width: 64,
            depth: 4,
            seed: 42,
        };
        let run = || {
            let mut cm = CountMinSketch::new(cfg);
            for i in 0..200u32 {
                cm.record(&flow(i % 17), 1);
            }
            (0..17u32)
                .map(|i| cm.estimate(&flow(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn error_bound_tracks_total() {
        let mut cm = CountMinSketch::new(SketchConfig {
            width: 272,
            depth: 4,
            seed: 3,
        });
        assert_eq!(cm.error_bound(), 0);
        for _ in 0..1000 {
            cm.record(&flow(1), 1);
        }
        // e/272 * 1000 = 9.99…; ceil = 10.
        assert_eq!(cm.error_bound(), 10);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cm = CountMinSketch::new(SketchConfig::default());
        cm.record(&flow(1), 5);
        cm.clear();
        assert_eq!(cm.estimate(&flow(1)), 0);
        assert_eq!(cm.total(), 0);
    }
}
