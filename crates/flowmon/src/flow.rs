//! Five-tuple flow keys, parsed zero-copy out of frame bytes.

use netfpga_packet::tcp::TcpPacket;
use netfpga_packet::udp::UdpPacket;
use netfpga_packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};

/// The canonical IPv4 five-tuple flow key.
///
/// Addresses are stored as big-endian `u32`s (so `10.0.0.1` is
/// `0x0a00_0001`) — the register encoding the MMIO table uses. Ports are
/// zero for protocols without them (ICMP, unknown).
///
/// The derived `Ord` gives a total, deterministic order used to break
/// ranking ties, so sorted flow reports are replay-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FiveTuple {
    /// Source IPv4 address (big-endian numeric).
    pub src_ip: u32,
    /// Destination IPv4 address (big-endian numeric).
    pub dst_ip: u32,
    /// Source transport port (0 when the protocol has none).
    pub src_port: u16,
    /// Destination transport port (0 when the protocol has none).
    pub dst_port: u16,
    /// IP protocol number (6 TCP, 17 UDP, 1 ICMP, …).
    pub proto: u8,
}

impl FiveTuple {
    /// Parse the five-tuple out of an Ethernet frame. Returns `None` for
    /// non-IPv4 frames and malformed headers. Only header bytes are
    /// inspected; nothing is copied.
    pub fn parse(frame: &[u8]) -> Option<FiveTuple> {
        let eth = EthernetFrame::new_checked(frame).ok()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::new_checked(eth.payload()).ok()?;
        let proto = ip.protocol();
        let (src_port, dst_port) = match proto {
            IpProtocol::Tcp => {
                let t = TcpPacket::new_checked(ip.payload()).ok()?;
                (t.src_port(), t.dst_port())
            }
            IpProtocol::Udp => {
                let u = UdpPacket::new_checked(ip.payload()).ok()?;
                (u.src_port(), u.dst_port())
            }
            _ => (0, 0),
        };
        Some(FiveTuple {
            src_ip: u32::from_be_bytes(*ip.src_addr().as_bytes()),
            dst_ip: u32::from_be_bytes(*ip.dst_addr().as_bytes()),
            src_port,
            dst_port,
            proto: proto_code(proto),
        })
    }

    /// Parse the five-tuple out of a possibly-truncated frame prefix —
    /// what a hardware parser sees in the first bus beats. Unlike
    /// [`FiveTuple::parse`], this never consults total-length fields
    /// (the tail may be cut off), so it only needs Ethernet + the IPv4
    /// header + the first four L4 bytes. Non-initial IP fragments carry
    /// no L4 header and get zero ports.
    pub fn parse_prefix(hdr: &[u8]) -> Option<FiveTuple> {
        if hdr.len() < 14 + 20 || hdr[12..14] != [0x08, 0x00] {
            return None;
        }
        let ip = &hdr[14..];
        if ip[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(ip[0] & 0x0f) * 4;
        if ihl < 20 || ip.len() < ihl {
            return None;
        }
        let proto = ip[9];
        let frag_offset = u16::from_be_bytes([ip[6], ip[7]]) & 0x1fff;
        let (src_port, dst_port) = match proto {
            6 | 17 if frag_offset == 0 => {
                let l4 = ip.get(ihl..ihl + 4)?;
                (
                    u16::from_be_bytes([l4[0], l4[1]]),
                    u16::from_be_bytes([l4[2], l4[3]]),
                )
            }
            _ => (0, 0),
        };
        Some(FiveTuple {
            src_ip: u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]),
            dst_ip: u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]),
            src_port,
            dst_port,
            proto,
        })
    }

    /// The 13 key bytes fed to the sketch hashes, in a fixed layout
    /// (src ip, dst ip, src port, dst port, proto — all big-endian).
    pub fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.src_ip.to_be_bytes();
        let d = self.dst_ip.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} proto {}",
            s[0],
            s[1],
            s[2],
            s[3],
            self.src_port,
            d[0],
            d[1],
            d[2],
            d[3],
            self.dst_port,
            self.proto
        )
    }
}

fn proto_code(p: IpProtocol) -> u8 {
    match p {
        IpProtocol::Icmp => 1,
        IpProtocol::Tcp => 6,
        IpProtocol::Udp => 17,
        IpProtocol::Unknown(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    #[test]
    fn prefix_parse_matches_full_parse_on_truncated_headers() {
        // A frame whose payload extends past any plausible snoop window:
        // the full-frame parse and an 80-byte-prefix parse must agree,
        // even though the prefix fails total-length validation.
        let frame = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(
                Ipv4Address::new(192, 168, 0, 1),
                Ipv4Address::new(192, 168, 0, 2),
            )
            .udp(1000, 53, &[0x5a; 900])
            .build();
        let full = FiveTuple::parse(&frame).expect("full frame parses");
        let prefix = FiveTuple::parse_prefix(&frame[..80]).expect("prefix parses");
        assert_eq!(full, prefix);
        assert_eq!(
            FiveTuple::parse_prefix(&frame),
            Some(full),
            "whole frame is a prefix too"
        );
        assert_eq!(
            FiveTuple::parse_prefix(&frame[..30]),
            None,
            "too short for L3"
        );
    }

    #[test]
    fn prefix_parse_zeroes_ports_on_non_initial_fragments() {
        let frame = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(7777, 80, &[0xaa; 20])
            .build();
        let mut frag = frame.clone();
        // Fragment offset 64 (field units of 8 bytes): bytes 6..8 of IP.
        frag[14 + 6] = 0x00;
        frag[14 + 7] = 0x08;
        let ft = FiveTuple::parse_prefix(&frag).expect("fragment still keys on addresses");
        assert_eq!(
            (ft.src_port, ft.dst_port),
            (0, 0),
            "no L4 header in later fragments"
        );
        assert_eq!(ft.proto, 17);
    }

    #[test]
    fn parses_udp_five_tuple() {
        let frame = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(1234, 80, &[0xaa; 20])
            .build();
        let ft = FiveTuple::parse(&frame).expect("udp parses");
        assert_eq!(ft.src_ip, 0x0a00_0001);
        assert_eq!(ft.dst_ip, 0x0a00_0002);
        assert_eq!(ft.src_port, 1234);
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.proto, 17);
    }

    #[test]
    fn non_ip_frames_are_none() {
        let frame = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .raw(EtherType::Arp, &[0; 46])
            .build();
        assert!(FiveTuple::parse(&frame).is_none());
        assert!(FiveTuple::parse(&[0u8; 10]).is_none(), "runt");
    }

    #[test]
    fn portless_protocols_key_on_zero_ports() {
        let frame = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(Ipv4Address::new(1, 2, 3, 4), Ipv4Address::new(5, 6, 7, 8))
            .ip_payload(IpProtocol::Unknown(47), &[0; 30])
            .build();
        let ft = FiveTuple::parse(&frame).expect("plain ipv4 parses");
        assert_eq!((ft.src_port, ft.dst_port, ft.proto), (0, 0, 47));
    }

    #[test]
    fn key_bytes_are_stable_and_distinct() {
        let a = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        };
        let b = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 4,
            dst_port: 3,
            proto: 6,
        };
        assert_eq!(a.key_bytes(), a.key_bytes());
        assert_ne!(a.key_bytes(), b.key_bytes());
    }
}
