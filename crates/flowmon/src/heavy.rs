//! The bounded heavy-hitter table: fixed capacity, deterministic
//! replace-min eviction keyed by the sketch estimate.
//!
//! The table is the hardware shape: a small CAM-like array scanned per
//! packet. When full, a new flow replaces the entry with the smallest
//! sketch estimate — but only if its own estimate is strictly larger
//! (ties keep the incumbent, and among equal minima the lowest index is
//! evicted, so behaviour is replay-deterministic).
//!
//! **No-miss invariant** (pinned by a property test): under replace-min,
//! the minimum tracked estimate never decreases, so any flow whose true
//! count exceeds the table's final minimum estimate is necessarily
//! resident — its last arrival either found it resident or inserted it
//! (its estimate ≥ its true count > the minimum), and it can never have
//! been evicted afterwards by a smaller-or-equal estimate.

use crate::flow::FiveTuple;

/// One tracked flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow key.
    pub flow: FiveTuple,
    /// Packets counted since the flow (re-)entered the table — exact for
    /// flows never evicted.
    pub packets: u64,
    /// Bytes counted since the flow (re-)entered the table.
    pub bytes: u64,
    /// The sketch's current estimate of the flow's **total** packet
    /// count (an upper bound; the eviction key).
    pub estimate: u64,
}

impl FlowRecord {
    /// Deterministic ranking key: estimate, then observed packets and
    /// bytes, then the flow's total order — descending sort on this is
    /// replay-stable.
    pub fn rank_key(&self) -> (u64, u64, u64, core::cmp::Reverse<FiveTuple>) {
        (
            self.estimate,
            self.packets,
            self.bytes,
            core::cmp::Reverse(self.flow),
        )
    }
}

/// The bounded table. See module docs.
#[derive(Debug, Clone)]
pub struct HeavyHitters {
    entries: Vec<FlowRecord>,
    capacity: usize,
    evictions: u64,
}

impl HeavyHitters {
    /// An empty table of `capacity` entries.
    pub fn new(capacity: usize) -> HeavyHitters {
        assert!(capacity > 0, "empty heavy-hitter table");
        HeavyHitters {
            entries: Vec::with_capacity(capacity),
            capacity,
            evictions: 0,
        }
    }

    /// Account one packet of `bytes` for `flow`, whose sketch estimate
    /// (after recording the packet) is `estimate`.
    pub fn update(&mut self, flow: FiveTuple, bytes: u64, estimate: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.flow == flow) {
            e.packets += 1;
            e.bytes += bytes;
            e.estimate = estimate;
            return;
        }
        let fresh = FlowRecord {
            flow,
            packets: 1,
            bytes,
            estimate,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(fresh);
            return;
        }
        // Replace-min: evict the smallest estimate (lowest index on
        // ties), and only for a strictly larger newcomer.
        let (idx, min_est) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.estimate)
            .map(|(i, e)| (i, e.estimate))
            .expect("capacity > 0");
        if estimate > min_est {
            self.entries[idx] = fresh;
            self.evictions += 1;
        }
    }

    /// Tracked flows, in insertion order (the MMIO table order).
    pub fn entries(&self) -> &[FlowRecord] {
        &self.entries
    }

    /// The top `n` flows by descending [`FlowRecord::rank_key`].
    pub fn top(&self, n: usize) -> Vec<FlowRecord> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| core::cmp::Reverse(e.rank_key()));
        v.truncate(n);
        v
    }

    /// The smallest tracked estimate (`None` while the table has spare
    /// capacity — nothing can have been rejected yet).
    pub fn min_estimate(&self) -> Option<u64> {
        if self.entries.len() < self.capacity {
            return None;
        }
        self.entries.iter().map(|e| e.estimate).min()
    }

    /// Flows evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (eviction count included).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: i,
            dst_ip: !i,
            src_port: 1,
            dst_port: 2,
            proto: 6,
        }
    }

    #[test]
    fn tracks_until_capacity_then_replaces_min() {
        let mut hh = HeavyHitters::new(2);
        hh.update(flow(1), 100, 5);
        hh.update(flow(2), 100, 3);
        assert_eq!(hh.len(), 2);
        // Estimate 2 < min (3): rejected.
        hh.update(flow(3), 100, 2);
        assert_eq!(hh.evictions(), 0);
        assert!(hh.entries().iter().all(|e| e.flow != flow(3)));
        // Estimate 4 > min (3): flow 2 evicted.
        hh.update(flow(4), 100, 4);
        assert_eq!(hh.evictions(), 1);
        let flows: Vec<_> = hh.entries().iter().map(|e| e.flow).collect();
        assert!(flows.contains(&flow(1)) && flows.contains(&flow(4)));
    }

    #[test]
    fn resident_flow_accumulates() {
        let mut hh = HeavyHitters::new(4);
        hh.update(flow(1), 100, 1);
        hh.update(flow(1), 50, 2);
        let e = hh.entries()[0];
        assert_eq!((e.packets, e.bytes, e.estimate), (2, 150, 2));
    }

    #[test]
    fn equal_estimate_keeps_incumbent() {
        let mut hh = HeavyHitters::new(1);
        hh.update(flow(1), 10, 7);
        hh.update(flow(2), 10, 7);
        assert_eq!(hh.entries()[0].flow, flow(1));
        assert_eq!(hh.evictions(), 0);
    }

    #[test]
    fn top_ranks_by_estimate_deterministically() {
        let mut hh = HeavyHitters::new(8);
        hh.update(flow(1), 10, 5);
        hh.update(flow(2), 10, 9);
        hh.update(flow(3), 10, 7);
        let top = hh.top(2);
        assert_eq!(top[0].flow, flow(2));
        assert_eq!(top[1].flow, flow(3));
    }

    #[test]
    fn min_estimate_only_when_full() {
        let mut hh = HeavyHitters::new(2);
        hh.update(flow(1), 1, 4);
        assert_eq!(hh.min_estimate(), None, "spare capacity: nothing rejected");
        hh.update(flow(2), 1, 6);
        assert_eq!(hh.min_estimate(), Some(4));
    }
}
