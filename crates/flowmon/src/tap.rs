//! The [`FlowTap`]: a zero-copy pass-through stage that feeds the flow
//! accounting state.
//!
//! The tap splices into an existing stream hop and moves words with
//! [`StreamRx::transfer_snoop`], so frames cross it without copying —
//! words stay refcount-bumped views of the original buffers, which are
//! never cloned, joined or rewritten. The tap snoops just the leading
//! header bytes of each frame into a small fixed scratch buffer (enough
//! for Ethernet + a maximal IPv4 header + ports) and parses the 5-tuple
//! from there. Payload beats are not even visited: once the header is
//! captured, the sop word's `meta.len` gives the frame's beat count
//! (`segment_buf` emits full-width beats up to the last), so the tap
//! vouches for the payload run and inspects only the eop beat — the way
//! a hardware parser watches the first beats of the bus while the
//! payload streams past. Flow state (sketch + heavy-hitter table +
//! rollup counters) lives in a shared cell read by the
//! [`FlowMonHandle`]; the hot path never touches the stat registry and
//! never allocates per packet.

use std::cell::RefCell;
use std::rc::Rc;

use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stream::{StreamRx, StreamTx};
use netfpga_core::telemetry::StatRegistry;

use crate::flow::FiveTuple;
use crate::heavy::{FlowRecord, HeavyHitters};
use crate::sketch::CountMinSketch;
use crate::FlowmonConfig;

#[derive(Debug)]
struct MonState {
    sketch: CountMinSketch,
    table: HeavyHitters,
    packets: u64,
    bytes: u64,
    non_ip: u64,
}

impl MonState {
    fn observe(&mut self, frame: &[u8], len: u64) {
        self.packets += 1;
        self.bytes += len;
        // Prefix parse: `frame` is just the leading header bytes when
        // fed from the tap's snoop, so length fields cannot be trusted.
        match FiveTuple::parse_prefix(frame) {
            Some(ft) => {
                let est = self.sketch.record(&ft, 1);
                self.table.update(ft, len, est);
            }
            None => self.non_ip += 1,
        }
    }

    fn clear(&mut self) {
        self.sketch.clear();
        self.table.clear();
        self.packets = 0;
        self.bytes = 0;
        self.non_ip = 0;
    }
}

/// Shared, read-mostly view of a tap's flow state — what the host API,
/// MMIO registers and gauges are built from. Cloning is a handle copy.
#[derive(Debug, Clone)]
pub struct FlowMonHandle {
    state: Rc<RefCell<MonState>>,
}

impl FlowMonHandle {
    /// The top `n` flows by descending sketch estimate (deterministic
    /// tie-break; see [`FlowRecord::rank_key`]).
    pub fn top_talkers(&self, n: usize) -> Vec<FlowRecord> {
        self.state.borrow().table.top(n)
    }

    /// Every tracked flow, in table (insertion) order.
    pub fn flows(&self) -> Vec<FlowRecord> {
        self.state.borrow().table.entries().to_vec()
    }

    /// The sketch's point estimate for `flow`.
    pub fn estimate(&self, flow: &FiveTuple) -> u64 {
        self.state.borrow().sketch.estimate(flow)
    }

    /// IPv4 packets accounted (plus non-IP ones counted separately).
    pub fn packets(&self) -> u64 {
        self.state.borrow().packets
    }

    /// Total bytes seen by the tap.
    pub fn bytes(&self) -> u64 {
        self.state.borrow().bytes
    }

    /// Frames that carried no parseable IPv4 five-tuple.
    pub fn non_ip(&self) -> u64 {
        self.state.borrow().non_ip
    }

    /// The sketch's current `⌈εN⌉` overestimation bound.
    pub fn error_bound(&self) -> u64 {
        self.state.borrow().sketch.error_bound()
    }

    /// Total count recorded into the sketch.
    pub fn total(&self) -> u64 {
        self.state.borrow().sketch.total()
    }

    /// Heavy-hitter evictions so far.
    pub fn evictions(&self) -> u64 {
        self.state.borrow().table.evictions()
    }

    /// Number of flows currently tracked.
    pub fn tracked(&self) -> usize {
        self.state.borrow().table.len()
    }

    /// Sketch/table dimensions, for self-description.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        let s = self.state.borrow();
        let cfg = s.sketch.config();
        (cfg.width, cfg.depth, s.table.capacity())
    }

    /// Reset all flow state (sketch, table, rollup counters).
    pub fn clear(&self) {
        self.state.borrow_mut().clear();
    }

    /// Account one frame directly, outside any tap — for host-side
    /// replay and tests; the in-pipeline feed is the [`FlowTap`] hot
    /// path.
    pub fn observe(&self, frame: &[u8], len: u64) {
        self.state.borrow_mut().observe(frame, len);
    }

    /// Register the tap's rollup gauges under `{prefix}.…` — all
    /// pull-based reads of the shared cell; nothing is written here on
    /// the packet path.
    pub fn register_stats(&self, registry: &StatRegistry, prefix: &str) {
        type Read = fn(&MonState) -> u64;
        let paths: [(&str, Read); 6] = [
            ("packets", |s| s.packets),
            ("bytes", |s| s.bytes),
            ("non_ip", |s| s.non_ip),
            ("flows", |s| s.table.len() as u64),
            ("evictions", |s| s.table.evictions()),
            ("error_bound", |s| s.sketch.error_bound()),
        ];
        for (leaf, read) in paths {
            let st = self.state.clone();
            registry.gauge(&format!("{prefix}.{leaf}"), move || read(&st.borrow()));
        }
    }
}

/// Enough scratch for Ethernet (14) + a maximal IPv4 header (60) + the
/// L4 port words (4), so [`FiveTuple::parse`] always has what it needs.
const HDR_MAX: usize = 80;

/// Per-frame header snoop state: the first [`HDR_MAX`] bytes of the frame
/// in flight, accumulated word by word until `eop`.
#[derive(Debug)]
struct HeaderSnoop {
    hdr: [u8; HDR_MAX],
    have: usize,
    /// Frame length from the sop word's metadata (0 when absent).
    len: u64,
    /// Bytes observed so far — the length fallback for meta-less frames.
    seen: u64,
    /// The sop word's byte width — the full bus width under
    /// `segment_buf` segmentation; zeroed if a mid-frame word disagrees,
    /// which disables beat-skipping for the rest of the frame.
    word_len: u64,
    /// Beats of the current frame accounted so far (inspected or
    /// vouched-for), for locating the eop beat.
    words_seen: u64,
    active: bool,
}

impl HeaderSnoop {
    fn new() -> HeaderSnoop {
        HeaderSnoop {
            hdr: [0; HDR_MAX],
            have: 0,
            len: 0,
            seen: 0,
            word_len: 0,
            words_seen: 0,
            active: false,
        }
    }
}

/// The tap module. Splice it into a stream hop:
/// producer → `input` → **FlowTap** → `output` → consumer.
#[derive(Debug)]
pub struct FlowTap {
    input: StreamRx,
    output: StreamTx,
    snoop: HeaderSnoop,
    state: Rc<RefCell<MonState>>,
    burst: bool,
    /// Vouched-for payload beats still queued upstream when a transfer
    /// batch ended mid-frame — resumed on the next tick.
    skip: usize,
    /// Activity-cache invalidation flag, registered on the input stream.
    wake: WakeHandle,
}

impl FlowTap {
    /// Build a tap between `input` and `output` with the given flow
    /// accounting dimensions.
    pub fn new(input: StreamRx, output: StreamTx, config: &FlowmonConfig) -> FlowTap {
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        FlowTap {
            input,
            output,
            snoop: HeaderSnoop::new(),
            state: Rc::new(RefCell::new(MonState {
                sketch: CountMinSketch::new(config.sketch),
                table: HeavyHitters::new(config.table_capacity),
                packets: 0,
                bytes: 0,
                non_ip: 0,
            })),
            burst: false,
            skip: 0,
            wake,
        }
    }

    /// Move whole bursts per tick instead of one word per cycle —
    /// matches the fast-path discipline of the surrounding pipeline.
    pub fn with_burst(mut self, burst: bool) -> FlowTap {
        self.burst = burst;
        self
    }

    /// A shared handle onto this tap's flow state.
    pub fn handle(&self) -> FlowMonHandle {
        FlowMonHandle {
            state: self.state.clone(),
        }
    }
}

impl Module for FlowTap {
    fn name(&self) -> &str {
        "flow_tap"
    }

    fn tick(&mut self, _ctx: &TickContext) {
        let max = if self.burst { usize::MAX } else { 1 };
        let snoop = &mut self.snoop;
        let state = &self.state;
        let (_, skip) = self
            .input
            .transfer_snoop(&self.output, max, self.skip, |w| {
                if w.sop {
                    snoop.have = 0;
                    snoop.seen = 0;
                    snoop.len = w.meta.as_ref().map_or(0, |m| u64::from(m.len));
                    snoop.word_len = w.len() as u64;
                    snoop.words_seen = 0;
                    snoop.active = true;
                }
                if !snoop.active {
                    return 0;
                }
                snoop.words_seen += 1;
                if snoop.have < HDR_MAX {
                    let bytes = w.bytes();
                    let take = (HDR_MAX - snoop.have).min(bytes.len());
                    snoop.hdr[snoop.have..snoop.have + take].copy_from_slice(&bytes[..take]);
                    snoop.have += take;
                    snoop.seen += bytes.len() as u64;
                    if !w.sop && !w.eop && w.len() as u64 != snoop.word_len {
                        // Irregular segmentation: the frame's beat count
                        // can't be derived from the sop word, so scan every
                        // beat of this frame instead of skipping.
                        snoop.word_len = 0;
                    }
                } else if snoop.len == 0 {
                    // Length fallback for meta-less frames only; frames
                    // with metadata don't visit payload beats at all.
                    snoop.seen += w.len() as u64;
                }
                if w.eop {
                    let len = if snoop.len > 0 { snoop.len } else { snoop.seen };
                    state.borrow_mut().observe(&snoop.hdr[..snoop.have], len);
                    snoop.active = false;
                    return 0;
                }
                // Header captured and the frame's beat count is derivable
                // from `meta.len` (full-width beats up to the last): vouch
                // for the payload run, leaving the eop beat inspected so a
                // desync degrades to scanning rather than over-skipping.
                if snoop.have >= HDR_MAX && snoop.len > 0 && snoop.word_len > 0 {
                    let total = snoop.len.div_ceil(snoop.word_len);
                    if total > snoop.words_seen + 1 {
                        let run = total - snoop.words_seen - 1;
                        snoop.words_seen += run;
                        return run as usize;
                    }
                }
                0
            });
        self.skip = skip;
    }

    fn reset(&mut self) {
        self.snoop = HeaderSnoop::new();
        self.skip = 0;
        self.state.borrow_mut().clear();
    }

    fn is_quiescent(&self) -> bool {
        !self.input.can_pop()
    }

    /// Only upstream pushes can un-idle the tap: with the input drained,
    /// downstream pops never change its classification.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::pktbuf::{pool_stats, PktBuf};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::{segment_buf, Meta, PortMask, Reassembler, Stream};
    use netfpga_core::time::{Frequency, Time};
    use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn udp_frame(src_last: u8, sport: u16) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(
                Ipv4Address::new(10, 0, 0, src_last),
                Ipv4Address::new(10, 0, 1, 1),
            )
            .udp(sport, 80, &[0x55; 32])
            .build()
    }

    fn run_tap(frames: &[Vec<u8>], burst: bool) -> (FlowMonHandle, usize) {
        let (in_tx, in_rx) = Stream::new(256, 64);
        let (out_tx, out_rx) = Stream::new(256, 64);
        let tap = FlowTap::new(in_rx, out_tx, &FlowmonConfig::default()).with_burst(burst);
        let handle = tap.handle();
        for f in frames {
            let buf = PktBuf::copy_from(f);
            let meta = Meta {
                len: buf.len() as u16,
                src_port: 0,
                dst_ports: PortMask::EMPTY,
                ingress_time: Time::ZERO,
                flags: 0,
            };
            for w in segment_buf(&buf, 64, meta) {
                in_tx.push(w);
            }
        }
        let mut sink = Reassembler::new();
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(250));
        sim.add_module(clk, tap);
        let mut delivered = 0;
        for _ in 0..10_000 {
            sim.step();
            while out_rx.can_pop() {
                if sink.push(out_rx.pop().expect("can_pop")).is_some() {
                    delivered += 1;
                }
            }
            if sim.all_quiescent() {
                break;
            }
        }
        (handle, delivered)
    }

    #[test]
    fn tap_passes_frames_through_and_accounts_flows() {
        let frames: Vec<_> = (0..12).map(|i| udp_frame(1 + (i % 3), 4000)).collect();
        let (handle, delivered) = run_tap(&frames, false);
        assert_eq!(delivered, 12, "tap is pass-through");
        assert_eq!(handle.packets(), 12);
        assert_eq!(handle.tracked(), 3);
        assert_eq!(handle.non_ip(), 0);
        let top = handle.top_talkers(3);
        assert_eq!(top.iter().map(|r| r.packets).sum::<u64>(), 12);
    }

    #[test]
    fn frames_longer_than_the_snoop_window_still_parse_and_count_bytes() {
        // 14 + 20 + 8 + 400 = 442 bytes — seven 64-byte words, far past
        // the HDR_MAX snoop window, so only a truncated header reaches
        // the parser (regression: truncated prefixes must not count as
        // non-IP).
        let big = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(Ipv4Address::new(10, 0, 0, 9), Ipv4Address::new(10, 0, 1, 1))
            .udp(8000, 443, &[0x77; 400])
            .build();
        let len = big.len() as u64;
        for burst in [false, true] {
            let (handle, delivered) = run_tap(std::slice::from_ref(&big), burst);
            assert_eq!(delivered, 1);
            assert_eq!(handle.non_ip(), 0, "truncated header still parses");
            assert_eq!(handle.tracked(), 1);
            let rec = handle.flows()[0];
            assert_eq!((rec.flow.src_port, rec.flow.dst_port), (8000, 443));
            assert_eq!(rec.bytes, len, "byte accounting covers the whole frame");
        }
    }

    #[test]
    fn burst_mode_accounts_identically() {
        let frames: Vec<_> = (0..9).map(|i| udp_frame(1 + (i % 3), 5000)).collect();
        let (slow, d1) = run_tap(&frames, false);
        let (fast, d2) = run_tap(&frames, true);
        assert_eq!(d1, d2);
        assert_eq!(
            slow.flows(),
            fast.flows(),
            "burst mode is functionally identical"
        );
    }

    #[test]
    fn non_ip_frames_pass_and_are_counted() {
        let arp = PacketBuilder::new()
            .eth(mac(1), mac(2))
            .raw(netfpga_packet::EtherType::Arp, &[0; 46])
            .build();
        let (handle, delivered) = run_tap(&[arp], true);
        assert_eq!(delivered, 1);
        assert_eq!(handle.non_ip(), 1);
        assert_eq!(handle.tracked(), 0);
        assert_eq!(handle.packets(), 1);
    }

    #[test]
    fn tap_observation_is_zero_copy() {
        let frames: Vec<_> = (0..32).map(|i| udp_frame(1 + (i % 4), 6000)).collect();
        let before = pool_stats().cow_copies;
        let (handle, delivered) = run_tap(&frames, true);
        assert_eq!(delivered, 32);
        assert_eq!(handle.packets(), 32);
        assert_eq!(
            pool_stats().cow_copies,
            before,
            "tap must not force copy-on-write on frames in flight"
        );
    }

    #[test]
    fn registered_gauges_read_live_state() {
        let reg = StatRegistry::new();
        let (_in_tx, in_rx) = Stream::new(4, 64);
        let (out_tx, _out_rx) = Stream::new(4, 64);
        let tap = FlowTap::new(in_rx, out_tx, &FlowmonConfig::default());
        tap.handle().register_stats(&reg, "flowmon");
        assert_eq!(reg.get("flowmon.packets"), Some(0));
        tap.state.borrow_mut().observe(&udp_frame(9, 7000), 70);
        assert_eq!(reg.get("flowmon.packets"), Some(1));
        assert_eq!(reg.get("flowmon.flows"), Some(1));
    }
}
