//! # netfpga-flowmon
//!
//! The flow-monitoring plane: bounded-resource per-flow accounting in the
//! datapath with a host-streamable export path — the observability layer
//! switch-virtualization and NFV platforms build on top of NetFPGA-class
//! pipelines.
//!
//! Three pieces, wired end to end:
//!
//! * **Flow accounting** — a [`CountMinSketch`] plus a bounded
//!   [`HeavyHitters`] table (fixed capacity, deterministic replace-min
//!   eviction keyed by the sketch estimate), fed by a zero-copy
//!   [`FlowTap`] sim module that parses [`FiveTuple`]s straight out of
//!   the words in flight without copying payload bytes.
//! * **Occupancy histograms** — log-linear (HDR-style)
//!   [`LogLinearHistogram`]s over queue depth and pktbuf-pool occupancy,
//!   exported through the `StatRegistry` as quantile gauges
//!   (`portN.q0.depth.p50/p99/max`). The hot path only touches shared
//!   cells; histograms are populated by the exporter, never per packet.
//! * **Streaming export** — a periodic [`FlowExporter`] module emitting
//!   Prometheus-text snapshots and a [`DeltaRing`] of timestamped counter
//!   deltas (same drop-on-full discipline as the event ring), mounted as
//!   a self-describing MMIO block at [`FLOWMON_BASE`].
//!
//! Everything is deterministic: sketch row salts come from a seeded
//! [`SimRng`](netfpga_core::rng::SimRng), eviction ties break by table
//! index, and the exporter samples on cycle-aligned instants, so a seeded
//! replay is bit-identical across scheduler modes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod flow;
pub mod heavy;
pub mod hist;
pub mod mmio;
pub mod sketch;
pub mod tap;

pub use export::{prometheus_text, Delta, DeltaRing, ExporterHandle, FlowExporter};
pub use flow::FiveTuple;
pub use heavy::{FlowRecord, HeavyHitters};
pub use hist::LogLinearHistogram;
pub use mmio::{FlowmonRegisters, FLOWMON_BASE, FLOWMON_MAGIC, FLOWMON_SIZE, FLOW_TABLE_OFF};
pub use sketch::{CountMinSketch, SketchConfig};
pub use tap::{FlowMonHandle, FlowTap};

use netfpga_core::time::Time;

/// Build-time configuration of a project's flow-monitoring plane.
#[derive(Debug, Clone)]
pub struct FlowmonConfig {
    /// Count-min sketch dimensions and seed.
    pub sketch: SketchConfig,
    /// Heavy-hitter table capacity (entries).
    pub table_capacity: usize,
    /// Exporter sampling interval (rounded down to whole core-clock
    /// cycles, minimum one cycle).
    pub sample_interval: Time,
    /// Capacity of the counter-delta ring (slots).
    pub delta_capacity: usize,
    /// Linear sub-bucket bits of the occupancy histograms (`m` gives
    /// `2^m` sub-buckets per octave, i.e. relative error `2^-m`).
    pub hist_sub_bits: u32,
}

impl Default for FlowmonConfig {
    fn default() -> FlowmonConfig {
        FlowmonConfig {
            sketch: SketchConfig::default(),
            table_capacity: 64,
            sample_interval: Time::from_us(50),
            delta_capacity: 32,
            hist_sub_bits: 4,
        }
    }
}
