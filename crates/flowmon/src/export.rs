//! Streaming telemetry export: periodic registry snapshots rendered as
//! Prometheus text, plus a bounded ring of timestamped counter deltas.
//!
//! The [`FlowExporter`] is a sim [`Module`] that wakes on cycle-aligned
//! sampling instants (advertised through `next_activity`, so time-blocked
//! fast-forward skips straight to them). Each sample it: records the
//! configured occupancy series into their shared histograms, snapshots
//! the stat registry, pushes a [`Delta`] for every counter that moved
//! (drop-on-full, like the event ring), and marks the Prometheus text
//! stale (it is re-rendered lazily on the next host read). Nothing here
//! runs per packet, and quiet periods cost almost nothing: every sample
//! in which no stat moved doubles the next interval (capped at 32× the
//! configured one), snapping back to the base rate on the first sign of
//! movement — interrupt-coalescing for telemetry.

use std::cell::RefCell;
use std::rc::Rc;

use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stats::Counter;
use netfpga_core::telemetry::StatRegistry;
use netfpga_core::time::Time;

use crate::hist::LogLinearHistogram;

/// One counter movement, as streamed to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// Index of the stat in the registry's sorted snapshot — the same
    /// order the telemetry stat block publishes names in, so the host
    /// resolves indices to paths without a side channel.
    pub stat: u32,
    /// The stat's value at the sample instant.
    pub value: u64,
    /// Change since the previous sample (wrapping, to survive clears).
    pub delta: u64,
    /// Sample timestamp.
    pub at: Time,
}

/// A bounded ring of [`Delta`]s with drop-on-full semantics: `head` and
/// `tail` are monotonically increasing sequence numbers, slot `seq` lives
/// at `seq % capacity`, and a push with no free slot increments `dropped`
/// instead of overwriting unread entries.
#[derive(Debug)]
pub struct DeltaRing {
    slots: Vec<Delta>,
    capacity: usize,
    head: u64,
    tail: u64,
    dropped: u64,
}

impl DeltaRing {
    /// An empty ring of `capacity` slots.
    pub fn new(capacity: usize) -> DeltaRing {
        assert!(capacity > 0, "empty delta ring");
        DeltaRing {
            slots: vec![
                Delta {
                    stat: 0,
                    value: 0,
                    delta: 0,
                    at: Time::ZERO
                };
                capacity
            ],
            capacity,
            head: 0,
            tail: 0,
            dropped: 0,
        }
    }

    /// Append one delta; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, d: Delta) -> bool {
        if self.head - self.tail >= self.capacity as u64 {
            self.dropped += 1;
            return false;
        }
        let idx = (self.head % self.capacity as u64) as usize;
        self.slots[idx] = d;
        self.head += 1;
        true
    }

    /// Consume the oldest unread delta.
    pub fn pop(&mut self) -> Option<Delta> {
        if self.tail == self.head {
            return None;
        }
        let idx = (self.tail % self.capacity as u64) as usize;
        self.tail += 1;
        Some(self.slots[idx])
    }

    /// Raw contents of slot `idx` (the MMIO RAM view — may be stale for
    /// already-consumed sequences, like real slot memory).
    pub fn slot(&self, idx: usize) -> Option<Delta> {
        self.slots.get(idx).copied()
    }

    /// Read the delta at sequence `seq` without consuming, if still live.
    pub fn get(&self, seq: u64) -> Option<Delta> {
        if seq < self.tail || seq >= self.head {
            return None;
        }
        Some(self.slots[(seq % self.capacity as u64) as usize])
    }

    /// Next sequence number to be written.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Oldest unread sequence number.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Advance the read pointer (clamped to `[tail, head]`) — the MMIO
    /// tail-write path.
    pub fn set_tail(&mut self, tail: u64) {
        self.tail = tail.clamp(self.tail, self.head);
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unread deltas.
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// True when nothing is unread.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Deltas discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forget everything, including the drop count.
    pub fn clear(&mut self) {
        self.head = 0;
        self.tail = 0;
        self.dropped = 0;
    }
}

/// Render one stat as a Prometheus exposition line into `out`:
/// `netfpga_<path> <value>\n` with non-alphanumeric separators folded to
/// `_`.
fn prometheus_line(out: &mut String, path: &str, value: u64) {
    out.push_str("netfpga_");
    for c in path.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Render a registry snapshot as Prometheus exposition text: one
/// `netfpga_<path> <value>` line per stat, dots and other separators
/// folded to `_`, in the registry's sorted-path order.
pub fn prometheus_text(snapshot: &[(String, u64)]) -> String {
    let mut out = String::with_capacity(snapshot.len() * 32);
    for (path, value) in snapshot {
        prometheus_line(&mut out, path, *value);
    }
    out
}

/// The values captured at the most recent sample instant, plus the
/// lazily rendered Prometheus text. The sampler only copies `u64`s here;
/// text is regenerated on the first read after each sample.
#[derive(Debug)]
struct SampledSnap {
    paths: Rc<Vec<String>>,
    values: Vec<u64>,
    dirty: bool,
    text: String,
}

/// Shared read-side of a [`FlowExporter`]: the delta ring, the latest
/// sampled snapshot and the snapshot counter survive after the exporter
/// module is moved into the simulator.
#[derive(Debug, Clone)]
pub struct ExporterHandle {
    ring: Rc<RefCell<DeltaRing>>,
    snap: Rc<RefCell<SampledSnap>>,
    snapshots: Counter,
}

impl ExporterHandle {
    /// The delta ring (shared with the MMIO block).
    pub fn ring(&self) -> Rc<RefCell<DeltaRing>> {
        self.ring.clone()
    }

    /// The most recent Prometheus-text snapshot (empty before the first
    /// sample). Rendering happens here, on the host side — the sampling
    /// hot path only copies values.
    pub fn prometheus(&self) -> String {
        let mut s = self.snap.borrow_mut();
        if s.dirty {
            let mut text = String::with_capacity(s.paths.len() * 32);
            for (path, value) in s.paths.iter().zip(&s.values) {
                prometheus_line(&mut text, path, *value);
            }
            s.text = text;
            s.dirty = false;
        }
        s.text.clone()
    }

    /// Samples taken so far.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.get()
    }

    /// The snapshot counter itself, for registry mounting.
    pub fn snapshot_counter(&self) -> Counter {
        self.snapshots.clone()
    }

    /// Drain every unread delta.
    pub fn drain_deltas(&self) -> Vec<Delta> {
        let mut ring = self.ring.borrow_mut();
        core::iter::from_fn(|| ring.pop()).collect()
    }
}

/// An occupancy series: a shared histogram and the sampled source.
type Series = (Rc<RefCell<LogLinearHistogram>>, Rc<dyn Fn() -> u64>);

/// The periodic exporter module. See module docs.
pub struct FlowExporter {
    registry: StatRegistry,
    interval: Time,
    ring: Rc<RefCell<DeltaRing>>,
    snap: Rc<RefCell<SampledSnap>>,
    snapshots: Counter,
    /// Occupancy series: every sample records `source()` into the shared
    /// histogram whose quantile gauges sit in the registry.
    series: Vec<Series>,
    /// Registry paths at the current baseline, in sorted order — delta
    /// `stat` indices point into this table.
    paths: Rc<Vec<String>>,
    /// Values at the previous sample, aligned with `paths`.
    prev: Vec<u64>,
    /// Reused per-sample value buffer (no per-sample allocation).
    scratch: Vec<u64>,
    inited: bool,
    interval_cycles: u64,
    next_cycle: u64,
    next_at: Time,
    /// Consecutive samples in which no stat moved. Each quiet sample
    /// doubles the next interval (capped at [`IDLE_BACKOFF_MAX_SHIFT`]
    /// doublings), so a drained pipeline costs a handful of wakeups
    /// instead of one per base interval; the first moving sample snaps
    /// back to the base rate.
    quiet: u32,
    /// Activity-cache flag. The exporter has no external input channels —
    /// its bound only moves on its own sample ticks — so the handle is
    /// never woken; it exists purely to let the kernel cache `next_at`.
    wake: WakeHandle,
}

/// Cap on idle-backoff doublings: the stretched interval never exceeds
/// `32×` the configured one.
const IDLE_BACKOFF_MAX_SHIFT: u32 = 5;

impl core::fmt::Debug for FlowExporter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlowExporter")
            .field("interval", &self.interval)
            .field("series", &self.series.len())
            .field("next_cycle", &self.next_cycle)
            .finish()
    }
}

impl FlowExporter {
    /// An exporter sampling `registry` every `interval` (rounded down to
    /// whole core-clock cycles at first tick, minimum one), streaming
    /// counter movements through a ring of `delta_capacity` slots.
    pub fn new(registry: StatRegistry, interval: Time, delta_capacity: usize) -> FlowExporter {
        assert!(interval > Time::ZERO, "zero sampling interval");
        FlowExporter {
            registry,
            interval,
            ring: Rc::new(RefCell::new(DeltaRing::new(delta_capacity))),
            snap: Rc::new(RefCell::new(SampledSnap {
                paths: Rc::new(Vec::new()),
                values: Vec::new(),
                dirty: false,
                text: String::new(),
            })),
            snapshots: Counter::new(),
            series: Vec::new(),
            paths: Rc::new(Vec::new()),
            prev: Vec::new(),
            scratch: Vec::new(),
            inited: false,
            interval_cycles: 1,
            next_cycle: 0,
            next_at: Time::ZERO,
            quiet: 0,
            wake: WakeHandle::new(),
        }
    }

    /// Sample `source` into `hist` at every export interval. The source
    /// runs only at sample instants — never on the packet path.
    pub fn add_series(
        &mut self,
        hist: Rc<RefCell<LogLinearHistogram>>,
        source: impl Fn() -> u64 + 'static,
    ) {
        self.series.push((hist, Rc::new(source)));
    }

    /// The shared read-side handle.
    pub fn handle(&self) -> ExporterHandle {
        ExporterHandle {
            ring: self.ring.clone(),
            snap: self.snap.clone(),
            snapshots: self.snapshots.clone(),
        }
    }

    /// Refresh the baseline path table and value vector from the
    /// registry. Runs at init and whenever the path set changes.
    fn rebaseline(&mut self) {
        let snap = self.registry.snapshot();
        self.paths = Rc::new(snap.iter().map(|(p, _)| p.clone()).collect());
        self.scratch.clear();
        self.scratch.extend(snap.iter().map(|(_, v)| *v));
    }

    /// Take one sample; returns true when any stat moved since the
    /// previous one (the idle-backoff signal).
    fn sample(&mut self, now: Time) -> bool {
        // Histograms first, so the quantile gauges in the snapshot below
        // reflect this sample.
        for (hist, source) in &self.series {
            hist.borrow_mut().record(source());
        }
        // Walk the registry once, allocation-free: collect values and
        // verify the path set still matches the baseline.
        let paths = &self.paths;
        let scratch = &mut self.scratch;
        scratch.clear();
        let mut same = true;
        let mut i = 0usize;
        self.registry.for_each(|path, value| {
            if i >= paths.len() || paths[i] != path {
                same = false;
            }
            scratch.push(value);
            i += 1;
        });
        let same = same && i == paths.len();
        let mut moved = !same;
        if same {
            let mut ring = self.ring.borrow_mut();
            for (idx, (&value, &prev)) in self.scratch.iter().zip(&self.prev).enumerate() {
                if value != prev {
                    moved = true;
                    ring.push(Delta {
                        stat: idx as u32,
                        value,
                        delta: value.wrapping_sub(prev),
                        at: now,
                    });
                }
            }
        } else {
            // Re-baseline silently when the path set changed (indices
            // moved); no deltas this sample.
            self.rebaseline();
        }
        std::mem::swap(&mut self.prev, &mut self.scratch);
        {
            let mut s = self.snap.borrow_mut();
            s.paths = self.paths.clone();
            s.values.clear();
            s.values.extend_from_slice(&self.prev);
            s.dirty = true;
        }
        self.snapshots.incr();
        moved
    }
}

impl Module for FlowExporter {
    fn name(&self) -> &str {
        "flow_exporter"
    }

    fn tick(&mut self, ctx: &TickContext) {
        if !self.inited {
            let period = ctx.period.as_ps().max(1);
            self.interval_cycles = (self.interval.as_ps() / period).max(1);
            self.next_cycle = ctx.cycle + self.interval_cycles;
            self.next_at = ctx.now + Time::from_ps(self.interval_cycles * period);
            self.rebaseline();
            std::mem::swap(&mut self.prev, &mut self.scratch);
            self.inited = true;
            return;
        }
        // Edges between samples take this single-compare exit — the
        // exporter is ticked on every busy edge, so anything more (even
        // recomputing `next_at`, which only changes when `next_cycle`
        // does) shows up in the saturated-throughput bars.
        if ctx.cycle < self.next_cycle {
            return;
        }
        while ctx.cycle >= self.next_cycle {
            if self.sample(ctx.now) {
                self.quiet = 0;
            } else {
                self.quiet = (self.quiet + 1).min(IDLE_BACKOFF_MAX_SHIFT);
            }
            self.next_cycle += self.interval_cycles << self.quiet;
        }
        self.next_at = ctx.now + Time::from_ps((self.next_cycle - ctx.cycle) * ctx.period.as_ps());
    }

    fn reset(&mut self) {
        self.ring.borrow_mut().clear();
        {
            let mut s = self.snap.borrow_mut();
            s.paths = Rc::new(Vec::new());
            s.values.clear();
            s.text.clear();
            s.dirty = false;
        }
        for (hist, _) in &self.series {
            hist.borrow_mut().clear();
        }
        self.prev.clear();
        self.paths = Rc::new(Vec::new());
        self.snapshots.clear();
        self.inited = false;
        self.quiet = 0;
    }

    fn is_quiescent(&self) -> bool {
        // The exporter always has a future sample scheduled; quiescence
        // skipping is bounded by `next_activity` instead.
        false
    }

    fn next_activity(&self) -> Option<Time> {
        self.inited.then_some(self.next_at)
    }

    /// No external channel moves the sample schedule; the handle lets the
    /// kernel cache the bound between the exporter's own ticks.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::sim::Simulator;
    use netfpga_core::time::Frequency;

    #[test]
    fn ring_drops_on_full_without_overwriting() {
        let mut r = DeltaRing::new(2);
        let d = |stat| Delta {
            stat,
            value: 1,
            delta: 1,
            at: Time::ZERO,
        };
        assert!(r.push(d(0)));
        assert!(r.push(d(1)));
        assert!(!r.push(d(2)), "full ring drops");
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.pop().unwrap().stat, 0, "unread entries intact");
        assert!(r.push(d(3)), "slot freed by pop");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ring_tail_writes_clamp() {
        let mut r = DeltaRing::new(4);
        for i in 0..3 {
            r.push(Delta {
                stat: i,
                value: 0,
                delta: 0,
                at: Time::ZERO,
            });
        }
        r.set_tail(100);
        assert_eq!(r.tail(), 3, "clamped to head");
        r.set_tail(0);
        assert_eq!(r.tail(), 3, "never rewinds");
    }

    #[test]
    fn prometheus_text_sanitizes_paths() {
        let snap = vec![
            ("pipeline.lookup.hits".to_string(), 42),
            ("port0.q0.depth.p99".to_string(), 7),
        ];
        let text = prometheus_text(&snap);
        assert_eq!(
            text,
            "netfpga_pipeline_lookup_hits 42\nnetfpga_port0_q0_depth_p99 7\n"
        );
    }

    #[test]
    fn exporter_samples_on_interval_and_streams_deltas() {
        let reg = StatRegistry::new();
        let c = reg.counter("rx.frames");
        // 100 MHz core clock (10 ns period); sample every 100 ns.
        let exp = FlowExporter::new(reg.clone(), Time::from_ns(100), 8);
        let handle = exp.handle();
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(100));
        sim.add_module(clk, exp);
        // First edge initializes; counter moves, then two intervals pass.
        sim.run_until(Time::from_ns(55));
        c.add(5);
        sim.run_until(Time::from_ns(255));
        assert!(handle.snapshots() >= 2, "sampled at 110 and 210 ns");
        let deltas = handle.drain_deltas();
        assert_eq!(deltas.len(), 1, "one stat moved once");
        assert_eq!((deltas[0].value, deltas[0].delta), (5, 5));
        assert!(handle.prometheus().contains("netfpga_rx_frames 5\n"));
    }

    #[test]
    fn exporter_records_series_into_histograms() {
        let reg = StatRegistry::new();
        let hist = LogLinearHistogram::shared(4);
        crate::hist::register_quantile_gauges(&reg, "pool.occupancy", &hist);
        let depth = Rc::new(std::cell::Cell::new(0u64));
        let mut exp = FlowExporter::new(reg.clone(), Time::from_ns(50), 8);
        let d = depth.clone();
        exp.add_series(hist.clone(), move || d.get());
        let handle = exp.handle();
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(100));
        sim.add_module(clk, exp);
        depth.set(12);
        sim.run_until(Time::from_us(1));
        assert!(handle.snapshots() > 0);
        assert_eq!(hist.borrow().max(), 12);
        assert_eq!(reg.get("pool.occupancy.max"), Some(12));
    }

    #[test]
    fn interval_shorter_than_period_clamps_to_every_cycle() {
        let reg = StatRegistry::new();
        let c = reg.counter("busy.ticks");
        let exp = FlowExporter::new(reg.clone(), Time::from_ps(1), 4);
        let handle = exp.handle();
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(100));
        sim.add_module(clk, exp);
        // Edges land every 10 ns; the first initializes, and while the
        // counter keeps moving each of the next ten edges takes one
        // sample (no idle backoff).
        for _ in 0..11 {
            c.incr();
            sim.step();
        }
        assert_eq!(handle.snapshots(), 10);
    }

    #[test]
    fn idle_sampling_backs_off_and_recovers() {
        let reg = StatRegistry::new();
        let c = reg.counter("rx.frames");
        // Sample every cycle at 100 MHz — worst case for idle cost.
        let exp = FlowExporter::new(reg.clone(), Time::from_ns(10), 8);
        let handle = exp.handle();
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(100));
        sim.add_module(clk, exp);
        sim.run_until(Time::from_us(1));
        let idle = handle.snapshots();
        assert!(
            idle < 20,
            "quiet sampling must back off: {idle} samples in 100 cycles"
        );
        c.add(3);
        sim.run_until(Time::from_us(2));
        assert!(
            handle.drain_deltas().iter().any(|d| d.delta == 3),
            "movement is still exported after backing off"
        );
        assert!(handle.prometheus().contains("netfpga_rx_frames 3\n"));
    }
}
