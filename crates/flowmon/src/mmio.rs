//! The self-describing flow-monitor MMIO block.
//!
//! Mounted at [`FLOWMON_BASE`], the block exposes the sketch dimensions,
//! rollup counters, the counter-delta ring and the heavy-hitter flow
//! table as plain 32-bit registers, so host tooling can discover and
//! read the whole flow-monitoring plane with nothing but `read32`.
//!
//! Word layout (byte offsets):
//!
//! | offset | register |
//! |--------|----------|
//! | `0x00` | magic [`FLOWMON_MAGIC`] (`"FLOW"`); **write**: clear flow state |
//! | `0x04` | sketch width (RO) |
//! | `0x08` | sketch depth (RO) |
//! | `0x0C` | heavy-hitter table capacity (RO) |
//! | `0x10` | flows currently tracked (RO) |
//! | `0x14` | packets accounted, low 32 bits (RO) |
//! | `0x18` | bytes seen, low 32 bits (RO) |
//! | `0x1C` | bytes seen, high 32 bits (RO) |
//! | `0x20` | non-IP frames (RO) |
//! | `0x24` | current `⌈εN⌉` error bound (RO) |
//! | `0x28` | heavy-hitter evictions (RO) |
//! | `0x2C` | exporter snapshots taken (RO) |
//! | `0x30` | delta-ring head sequence (RO) |
//! | `0x34` | delta-ring tail; host writes to consume (same clamp discipline as the event ring) |
//! | `0x38` | delta-ring capacity in slots (RO) |
//! | `0x3C` | deltas dropped on overflow (RO) |
//! | `0x40 + 16·(seq % capacity)` | delta slot: stat index, value lo, delta lo, time ns |
//! | [`FLOW_TABLE_OFF`]` + 32·i` | flow entry `i`: src ip, dst ip, ports (src≪16 \| dst), proto, packets lo, bytes lo, bytes hi, estimate lo |
//!
//! Flow entries appear in table (insertion) order; unused entries read
//! as zero. The delta-slot region sizes the ring at ≤ 60 slots and the
//! table at ≤ 224 entries so everything fits in [`FLOWMON_SIZE`].

use netfpga_core::regs::{RegisterSpace, UNMAPPED_READ};

use crate::export::ExporterHandle;
use crate::tap::FlowMonHandle;

/// Base MMIO address of the flow-monitor block (between the OSNT blocks
/// ending at `0x7000` and the telemetry stat block at `0xA000`).
pub const FLOWMON_BASE: u32 = 0x8000;
/// Size of the flow-monitor block in bytes.
pub const FLOWMON_SIZE: u32 = 0x2000;
/// Magic word at offset 0: `"FLOW"` in ASCII.
pub const FLOWMON_MAGIC: u32 = 0x464c_4f57;
/// Byte offset of the heavy-hitter flow table within the block.
pub const FLOW_TABLE_OFF: u32 = 0x400;

/// Byte offset of the first delta slot.
const DELTA_SLOTS_OFF: u32 = 0x40;
/// Bytes per delta slot (4 words).
const DELTA_SLOT_BYTES: u32 = 0x10;
/// Bytes per flow-table entry (8 words).
const FLOW_ENTRY_BYTES: u32 = 0x20;

/// The register space itself. Build from the tap and exporter handles,
/// then mount with [`netfpga_core::regs::shared`].
pub struct FlowmonRegisters {
    mon: FlowMonHandle,
    exporter: ExporterHandle,
}

impl FlowmonRegisters {
    /// A register view over a tap's flow state and its exporter.
    ///
    /// Panics if the delta ring or flow table is too large for the
    /// fixed block layout (> 60 slots / > 224 entries).
    pub fn new(mon: FlowMonHandle, exporter: ExporterHandle) -> FlowmonRegisters {
        let ring_cap = exporter.ring().borrow().capacity();
        assert!(
            ring_cap as u32 * DELTA_SLOT_BYTES <= FLOW_TABLE_OFF - DELTA_SLOTS_OFF,
            "delta ring larger than the slot window (max 60)"
        );
        let (_, _, table_cap) = mon.dimensions();
        assert!(
            FLOW_TABLE_OFF + table_cap as u32 * FLOW_ENTRY_BYTES <= FLOWMON_SIZE,
            "flow table larger than the block (max 224 entries)"
        );
        FlowmonRegisters { mon, exporter }
    }
}

impl RegisterSpace for FlowmonRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        let offset = offset & !3;
        let (width, depth, table_cap) = self.mon.dimensions();
        if offset >= FLOW_TABLE_OFF {
            let rel = offset - FLOW_TABLE_OFF;
            let i = (rel / FLOW_ENTRY_BYTES) as usize;
            if i >= table_cap {
                return UNMAPPED_READ;
            }
            let flows = self.mon.flows();
            let Some(e) = flows.get(i) else { return 0 };
            return match rel % FLOW_ENTRY_BYTES {
                0x00 => e.flow.src_ip,
                0x04 => e.flow.dst_ip,
                0x08 => (u32::from(e.flow.src_port) << 16) | u32::from(e.flow.dst_port),
                0x0C => u32::from(e.flow.proto),
                0x10 => e.packets as u32,
                0x14 => e.bytes as u32,
                0x18 => (e.bytes >> 32) as u32,
                _ => e.estimate as u32,
            };
        }
        if offset >= DELTA_SLOTS_OFF {
            let rel = offset - DELTA_SLOTS_OFF;
            let slot = (rel / DELTA_SLOT_BYTES) as usize;
            let ring = self.exporter.ring();
            let ring = ring.borrow();
            let Some(d) = ring.slot(slot) else {
                return UNMAPPED_READ;
            };
            return match rel % DELTA_SLOT_BYTES {
                0x0 => d.stat,
                0x4 => d.value as u32,
                0x8 => d.delta as u32,
                _ => d.at.as_ns() as u32,
            };
        }
        match offset {
            0x00 => FLOWMON_MAGIC,
            0x04 => width as u32,
            0x08 => depth as u32,
            0x0C => table_cap as u32,
            0x10 => self.mon.tracked() as u32,
            0x14 => self.mon.packets() as u32,
            0x18 => self.mon.bytes() as u32,
            0x1C => (self.mon.bytes() >> 32) as u32,
            0x20 => self.mon.non_ip() as u32,
            0x24 => self.mon.error_bound() as u32,
            0x28 => self.mon.evictions() as u32,
            0x2C => self.exporter.snapshots() as u32,
            0x30 => self.exporter.ring().borrow().head() as u32,
            0x34 => self.exporter.ring().borrow().tail() as u32,
            0x38 => self.exporter.ring().borrow().capacity() as u32,
            0x3C => self.exporter.ring().borrow().dropped() as u32,
            _ => UNMAPPED_READ,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset & !3 {
            // Any write to the magic word clears the flow state — the
            // host-side "restart accounting" knob.
            0x00 => self.mon.clear(),
            0x34 => {
                let ring = self.exporter.ring();
                let mut ring = ring.borrow_mut();
                // Host hands back the low 32 bits of its consumer
                // sequence; unwrap against the current tail like the
                // event ring does.
                let base = ring.tail() & !0xffff_ffff;
                let mut tail = base | u64::from(value);
                if tail < ring.tail() {
                    tail += 1 << 32;
                }
                ring.set_tail(tail);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowExporter, FlowTap, FlowmonConfig, SketchConfig};
    use netfpga_core::regs::{shared, AddressMap};
    use netfpga_core::stream::Stream;
    use netfpga_core::telemetry::StatRegistry;
    use netfpga_core::time::Time;
    use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn frame(last: u8, sport: u16) -> Vec<u8> {
        PacketBuilder::new()
            .eth(
                EthernetAddress::new(2, 0, 0, 0, 0, 1),
                EthernetAddress::new(2, 0, 0, 0, 0, 2),
            )
            .ipv4(
                Ipv4Address::new(10, 0, 0, last),
                Ipv4Address::new(10, 0, 1, 1),
            )
            .udp(sport, 80, &[0; 24])
            .build()
    }

    fn setup() -> (FlowMonHandle, ExporterHandle, AddressMap) {
        let (_tx, rx) = Stream::new(4, 64);
        let (tx2, _rx2) = Stream::new(4, 64);
        let config = FlowmonConfig {
            sketch: SketchConfig {
                width: 128,
                depth: 3,
                seed: 9,
            },
            table_capacity: 8,
            delta_capacity: 16,
            ..FlowmonConfig::default()
        };
        let tap = FlowTap::new(rx, tx2, &config);
        let mon = tap.handle();
        let exporter = FlowExporter::new(StatRegistry::new(), Time::from_us(1), 16).handle();
        let map = AddressMap::new();
        map.mount(
            "flowmon",
            FLOWMON_BASE,
            FLOWMON_SIZE,
            shared(FlowmonRegisters::new(mon.clone(), exporter.clone())),
        );
        (mon, exporter, map)
    }

    #[test]
    fn block_is_self_describing() {
        let (_mon, _exp, map) = setup();
        assert_eq!(map.read(FLOWMON_BASE), FLOWMON_MAGIC);
        assert_eq!(map.read(FLOWMON_BASE + 0x04), 128, "width");
        assert_eq!(map.read(FLOWMON_BASE + 0x08), 3, "depth");
        assert_eq!(map.read(FLOWMON_BASE + 0x0C), 8, "table capacity");
        assert_eq!(map.read(FLOWMON_BASE + 0x38), 16, "ring capacity");
    }

    #[test]
    fn flow_table_reads_back_entries() {
        let (mon, _exp, map) = setup();
        let f = frame(7, 3333);
        mon.observe(&f, f.len() as u64);
        mon.observe(&f, f.len() as u64);
        assert_eq!(map.read(FLOWMON_BASE + 0x10), 1, "one flow tracked");
        assert_eq!(map.read(FLOWMON_BASE + 0x14), 2, "two packets");
        let e = FLOWMON_BASE + FLOW_TABLE_OFF;
        assert_eq!(map.read(e), 0x0a00_0007, "src ip");
        assert_eq!(map.read(e + 0x04), 0x0a00_0101, "dst ip");
        assert_eq!(map.read(e + 0x08), (3333 << 16) | 80, "ports");
        assert_eq!(map.read(e + 0x0C), 17, "proto");
        assert_eq!(map.read(e + 0x10), 2, "packets");
        assert_eq!(map.read(e + 0x14), 2 * f.len() as u32, "bytes");
        assert_eq!(map.read(e + 0x1C), 2, "estimate");
        // Unused entry reads zero; past capacity reads unmapped.
        assert_eq!(map.read(e + FLOW_ENTRY_BYTES), 0);
        assert_eq!(map.read(e + 8 * FLOW_ENTRY_BYTES), UNMAPPED_READ);
    }

    #[test]
    fn magic_write_clears_flow_state() {
        let (mon, _exp, map) = setup();
        let f = frame(1, 1000);
        mon.observe(&f, f.len() as u64);
        assert_eq!(map.read(FLOWMON_BASE + 0x10), 1);
        map.write(FLOWMON_BASE, 1);
        assert_eq!(map.read(FLOWMON_BASE + 0x10), 0, "cleared");
        assert_eq!(map.read(FLOWMON_BASE + 0x14), 0);
    }

    #[test]
    fn delta_ring_walks_like_the_event_ring() {
        use crate::export::Delta;
        let (_mon, exp, map) = setup();
        for i in 0..3u32 {
            exp.ring().borrow_mut().push(Delta {
                stat: i,
                value: u64::from(i) * 10,
                delta: 5,
                at: Time::from_ns(u64::from(i)),
            });
        }
        let head = map.read(FLOWMON_BASE + 0x30);
        let tail = map.read(FLOWMON_BASE + 0x34);
        assert_eq!((head, tail), (3, 0));
        let cap = map.read(FLOWMON_BASE + 0x38);
        for seq in tail..head {
            let slot = FLOWMON_BASE + DELTA_SLOTS_OFF + DELTA_SLOT_BYTES * (seq % cap);
            assert_eq!(map.read(slot), seq, "stat index");
            assert_eq!(map.read(slot + 4), seq * 10, "value");
        }
        map.write(FLOWMON_BASE + 0x34, head);
        assert_eq!(map.read(FLOWMON_BASE + 0x34), 3, "tail advanced");
        map.write(FLOWMON_BASE + 0x34, 0);
        assert_eq!(map.read(FLOWMON_BASE + 0x34), 3, "tail never rewinds");
    }

    #[test]
    fn oversized_ring_panics() {
        let (_tx, rx) = Stream::new(4, 64);
        let (tx2, _rx2) = Stream::new(4, 64);
        let tap = FlowTap::new(rx, tx2, &FlowmonConfig::default());
        let exporter = FlowExporter::new(StatRegistry::new(), Time::from_us(1), 61).handle();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FlowmonRegisters::new(tap.handle(), exporter)
        }));
        assert!(result.is_err(), "61-slot ring must not fit");
    }
}
