//! Log-linear (HDR-style) histograms for occupancy and depth series.
//!
//! Values below `2^m` (with `m` = `sub_bits`) get exact unit buckets;
//! above that, each power-of-two octave is split into `2^m` linear
//! sub-buckets, so the reported quantile overshoots the true value by at
//! most a `2^-m` relative error. Buckets grow lazily (bounded by
//! `64 · 2^m` entries), recording is O(1) with no allocation in steady
//! state, and quantiles are computed only when a gauge is read — never on
//! the hot path.

use std::cell::RefCell;
use std::rc::Rc;

/// The histogram. See module docs.
#[derive(Debug, Clone)]
pub struct LogLinearHistogram {
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    max: u64,
    /// Cached `(p50, p99)` — recomputed in one bucket walk only when a
    /// record happened since the last read, so idle-time gauge sweeps
    /// (the exporter samples every path each interval) cost O(1).
    cached: (u64, u64),
    dirty: bool,
}

impl LogLinearHistogram {
    /// An empty histogram with `2^sub_bits` linear sub-buckets per
    /// octave (`sub_bits` in `1..=16`).
    pub fn new(sub_bits: u32) -> LogLinearHistogram {
        assert!((1..=16).contains(&sub_bits), "sub_bits in 1..=16");
        LogLinearHistogram {
            sub_bits,
            buckets: Vec::new(),
            count: 0,
            max: 0,
            cached: (0, 0),
            dirty: false,
        }
    }

    /// A shared handle, for the exporter-writes / gauge-reads split.
    pub fn shared(sub_bits: u32) -> Rc<RefCell<LogLinearHistogram>> {
        Rc::new(RefCell::new(LogLinearHistogram::new(sub_bits)))
    }

    fn bucket_index(&self, v: u64) -> usize {
        let m = self.sub_bits;
        if v < (1 << m) {
            return v as usize;
        }
        let e = 63 - v.leading_zeros();
        let group = (e - m + 1) as usize;
        let sub = ((v >> (e - m)) - (1 << m)) as usize;
        (group << m) + sub
    }

    /// Inclusive upper bound of bucket `idx` — what quantiles report.
    fn bucket_upper(&self, idx: usize) -> u64 {
        let m = self.sub_bits;
        let group = idx >> m;
        if group == 0 {
            return idx as u64;
        }
        let sub = (idx & ((1usize << m) - 1)) as u64;
        (((1u64 << m) + sub + 1) << (group - 1)) - 1
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self.bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.dirty = true;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-th percentile (`0 < q <= 100`): the upper bound of the
    /// bucket holding the rank-`⌈q/100·count⌉` sample, clamped to the
    /// exact maximum. 0 when empty. Overshoots the true sample by at
    /// most a `2^-sub_bits` relative error.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return self.bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// `(p50, p99)` from the cache, recomputed in a single bucket walk
    /// only when samples arrived since the last call.
    pub fn quantiles_cached(&mut self) -> (u64, u64) {
        if self.dirty {
            self.cached = (self.percentile(50.0), self.percentile(99.0));
            self.dirty = false;
        }
        self.cached
    }

    /// Drop every sample.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.max = 0;
        self.cached = (0, 0);
        self.dirty = false;
    }
}

/// Register `{path}.p50`, `{path}.p99` and `{path}.max` quantile gauges
/// over a shared histogram — reads walk the buckets lazily; nothing here
/// ever runs on the datapath hot path.
pub fn register_quantile_gauges(
    registry: &netfpga_core::telemetry::StatRegistry,
    path: &str,
    hist: &Rc<RefCell<LogLinearHistogram>>,
) {
    let h = hist.clone();
    registry.gauge(&format!("{path}.p50"), move || {
        h.borrow_mut().quantiles_cached().0
    });
    let h = hist.clone();
    registry.gauge(&format!("{path}.p99"), move || {
        h.borrow_mut().quantiles_cached().1
    });
    let h = hist.clone();
    registry.gauge(&format!("{path}.max"), move || h.borrow().max());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new(4);
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
        // Rank 1 of 16 at q = 6.25 % is the sample 0.
        assert_eq!(h.percentile(6.25), 0);
    }

    #[test]
    fn quantile_error_is_within_sub_bucket_bound() {
        let mut h = LogLinearHistogram::new(4);
        let mut samples: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 100_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [50.0, 90.0, 99.0] {
            let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize - 1;
            let exact = samples[rank];
            let got = h.percentile(q);
            assert!(got >= exact, "p{q} undershoots: {got} < {exact}");
            let err = (got - exact) as f64;
            assert!(
                err <= (exact as f64) / 16.0 + 1.0,
                "p{q} overshoots past 2^-4 relative: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile(100.0), *samples.last().unwrap());
    }

    #[test]
    fn bucket_mapping_is_monotone_and_continuous() {
        let h = LogLinearHistogram::new(3);
        let mut prev = 0usize;
        for v in 0..10_000u64 {
            let idx = h.bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx <= prev + 1, "index jumped at {v}");
            assert!(h.bucket_upper(idx) >= v, "upper bound below member at {v}");
            prev = idx;
        }
    }

    #[test]
    fn empty_reads_zero_and_clear_resets() {
        let mut h = LogLinearHistogram::new(2);
        assert_eq!(h.percentile(99.0), 0);
        h.record(77);
        h.clear();
        assert_eq!((h.count(), h.max(), h.percentile(50.0)), (0, 0, 0));
    }

    #[test]
    fn quantile_gauges_read_the_shared_cell() {
        let reg = netfpga_core::telemetry::StatRegistry::new();
        let h = LogLinearHistogram::shared(4);
        register_quantile_gauges(&reg, "port0.q0.depth", &h);
        assert_eq!(reg.get("port0.q0.depth.p99"), Some(0));
        for v in [1u64, 2, 3, 100] {
            h.borrow_mut().record(v);
        }
        assert_eq!(reg.get("port0.q0.depth.max"), Some(100));
        assert!(reg.get("port0.q0.depth.p50").unwrap() >= 2);
        assert!(!reg.clearable("port0.q0.depth.p50"), "gauges are read-only");
    }
}
