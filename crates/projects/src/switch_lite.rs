//! The reference switch_lite project: the cut-down learning switch that
//! ships alongside the full one — no host datapath, no per-port class
//! queues, just MACs, arbiter, learning lookup and a single shared output
//! FIFO per port. It exists (here as on the platform) to show the modular
//! scale-down: remove blocks and the design still works, with a fraction
//! of the resources.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::AddressMap;
use netfpga_core::resources::ResourceCost;
use netfpga_core::sim::{Module, TickContext};
use netfpga_core::stream::{segment_buf, Meta, Reassembler, Stream, StreamRx, StreamTx, Word};
use netfpga_core::time::Time;
use netfpga_datapath::blocks;
use netfpga_datapath::stage::{PacketLogic, StageAction};
use netfpga_datapath::{InputArbiter, LearningSwitchCore, PacketStage};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A minimal 1-to-N splitter: pops one word per cycle, reassembles, and
/// copies each completed packet to every destination port's stream with no
/// intermediate queueing beyond the channel FIFOs (switch_lite has no
/// output-queue block). If any destination channel lacks space the packet
/// stalls — shared-FIFO head-of-line blocking, the documented cost of the
/// lite design.
struct LiteSplitter {
    name: String,
    input: StreamRx,
    outputs: Vec<StreamTx>,
    reasm: Reassembler,
    /// Packets waiting to be copied out: (per-port word queues).
    staging: VecDeque<(Meta, PktBuf)>,
    emitting: Vec<VecDeque<Word>>,
}

impl LiteSplitter {
    fn new(name: &str, input: StreamRx, outputs: Vec<StreamTx>) -> LiteSplitter {
        let n = outputs.len();
        LiteSplitter {
            name: name.to_string(),
            input,
            outputs,
            reasm: Reassembler::new(),
            staging: VecDeque::new(),
            emitting: vec![VecDeque::new(); n],
        }
    }
}

impl Module for LiteSplitter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        // Ingest unless staging is backed up (tiny elasticity of 2).
        if self.staging.len() < 2 {
            if let Some(word) = self.input.pop() {
                if let Some((packet, meta)) = self.reasm.push(word) {
                    if !meta.dst_ports.is_empty() {
                        self.staging.push_back((meta, packet));
                    }
                }
            }
        }
        // Start copying the head packet once every involved port is idle.
        if let Some((meta, _)) = self.staging.front() {
            let ports: Vec<usize> = meta.dst_ports.iter().map(usize::from).collect();
            if ports
                .iter()
                .all(|&p| p < self.emitting.len() && self.emitting[p].is_empty())
            {
                let (meta, packet) = self.staging.pop_front().expect("front exists");
                for p in meta.dst_ports.iter() {
                    let p = usize::from(p);
                    if p < self.outputs.len() {
                        let mut m = meta;
                        m.dst_ports = netfpga_core::stream::PortMask::single(p as u8);
                        // Zero-copy flood: every port's words are views
                        // into the same shared backing buffer.
                        self.emitting[p] = segment_buf(&packet, self.outputs[p].width(), m).into();
                    }
                }
            }
        }
        // Emit one word per port per cycle.
        for (p, q) in self.emitting.iter_mut().enumerate() {
            if !q.is_empty() && self.outputs[p].can_push() {
                let word = q.pop_front().expect("non-empty");
                self.outputs[p].push(word);
            }
        }
    }

    fn reset(&mut self) {
        self.reasm = Reassembler::new();
        self.staging.clear();
        for q in &mut self.emitting {
            q.clear();
        }
    }
}

struct LiteLookup {
    core: Rc<RefCell<LearningSwitchCore>>,
}

impl PacketLogic for LiteLookup {
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, now: Time) -> StageAction {
        let mask = self.core.borrow_mut().forward(packet, meta, now);
        if mask.is_empty() {
            return StageAction::Drop;
        }
        meta.dst_ports = mask;
        StageAction::Forward
    }

    fn reset(&mut self) {
        self.core.borrow_mut().flush();
    }
}

/// The assembled switch_lite.
pub struct SwitchLite {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// The learning core.
    pub core: Rc<RefCell<LearningSwitchCore>>,
}

impl SwitchLite {
    /// Build on `spec` with `nports` ports.
    pub fn new(spec: &BoardSpec, nports: usize, table_capacity: usize, age: Time) -> SwitchLite {
        let (mut chassis, io) = Chassis::new(spec, nports, AddressMap::new());
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let w = chassis.bus_width();
        let core = Rc::new(RefCell::new(LearningSwitchCore::new(
            nports as u8,
            table_capacity,
            age,
        )));
        let (arb_tx, arb_rx) = Stream::new(32, w);
        let arbiter = InputArbiter::new("input_arbiter", from_ports, arb_tx);
        let (lk_tx, lk_rx) = Stream::new(32, w);
        let lookup = PacketStage::new(
            "lite_lookup",
            arb_rx,
            lk_tx,
            4,
            LiteLookup { core: core.clone() },
        );
        let splitter = LiteSplitter::new("lite_splitter", lk_rx, to_ports);
        lookup.register_stats(&chassis.telemetry, "pipeline.lookup");
        LearningSwitchCore::register_stats(&core, &chassis.telemetry, "lookup");
        chassis.add_module(arbiter);
        chassis.add_module(lookup);
        chassis.add_module(splitter);
        SwitchLite { chassis, core }
    }

    /// Approximate FPGA cost (experiment E7): no DMA datapath buffers, no
    /// per-port output queues — the point of the lite variant.
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::REG_INTERCONNECT
            + blocks::INPUT_ARBITER
            + blocks::SWITCH_LOOKUP
            + ResourceCost {
                luts: 400,
                ffs: 500,
                bram_kbits: 72,
                dsps: 0,
            } // splitter
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "reg_interconnect",
            "input_arbiter",
            "switch_lookup",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::{EthernetAddress, PacketBuilder};

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn frame(src: u8, dst: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .raw(netfpga_packet::EtherType::Ipv4, &[src; 50])
            .build()
    }

    fn lite() -> SwitchLite {
        SwitchLite::new(&BoardSpec::sume(), 4, 256, Time::from_ms(100))
    }

    #[test]
    fn floods_and_learns_like_the_full_switch() {
        let mut sw = lite();
        sw.chassis.send(0, frame(1, 2));
        sw.chassis.run_for(Time::from_us(20));
        for p in 1..4 {
            assert_eq!(sw.chassis.recv(p).len(), 1, "flood to {p}");
        }
        assert!(sw.chassis.recv(0).is_empty());
        sw.chassis.send(2, frame(2, 1));
        sw.chassis.run_for(Time::from_us(20));
        assert_eq!(sw.chassis.recv(0).len(), 1, "unicast back");
        assert!(sw.chassis.recv(1).is_empty());
        assert!(sw.chassis.recv(3).is_empty());
    }

    #[test]
    fn sustained_traffic_no_loss_within_elasticity() {
        let mut sw = lite();
        // Learn both stations first.
        sw.chassis.send(0, frame(1, 2));
        sw.chassis.run_for(Time::from_us(20));
        sw.chassis.send(1, frame(2, 1));
        sw.chassis.run_for(Time::from_us(20));
        for p in 0..4 {
            sw.chassis.recv(p);
        }
        // One-directional stream at line rate: lite forwards it all.
        for _ in 0..100 {
            sw.chassis.send(0, frame(1, 2));
        }
        sw.chassis.run_for(Time::from_ms(1));
        assert_eq!(sw.chassis.recv(1).len(), 100);
    }

    #[test]
    fn cheaper_than_the_full_switch() {
        let lite = SwitchLite::resource_cost(4);
        let full = crate::reference_switch::ReferenceSwitch::resource_cost(4);
        assert!(lite.luts < full.luts);
        assert!(lite.bram_kbits < full.bram_kbits);
        assert!(lite.fits(&BoardSpec::sume().resources));
    }

    /// The documented weakness of the lite design: head-of-line blocking.
    /// Two flows to different ports share fate when one egress is slow —
    /// here both stall behind a multicast that needs every port free.
    #[test]
    fn behaves_under_multicast_bursts() {
        let mut sw = lite();
        // Broadcast burst: every frame must reach 3 ports.
        for _ in 0..10 {
            sw.chassis.send(
                0,
                PacketBuilder::new()
                    .eth(mac(1), EthernetAddress::BROADCAST)
                    .raw(netfpga_packet::EtherType::Arp, &[0; 46])
                    .build(),
            );
        }
        sw.chassis.run_for(Time::from_ms(1));
        for p in 1..4 {
            assert_eq!(sw.chassis.recv(p).len(), 10, "port {p}");
        }
    }
}
