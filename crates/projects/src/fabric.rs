//! Multi-chassis fabrics of reference switches: the projects-side glue
//! for the parallel fabric plane (`netfpga-fabric`).
//!
//! This module makes a [`ReferenceSwitch`] drivable by the fabric runner
//! ([`FabricNode`] impl), provides the canonical **leaf–spine** topology
//! builder used by the scaling experiment (E16) and the equivalence
//! property tests, and a shared workload driver that produces
//! bit-comparable per-node traces.
//!
//! # Why pre-taught tables
//!
//! A multi-spine leaf–spine fabric has physical loops; flooding a single
//! unknown destination through L2-learning switches on such a topology
//! creates a broadcast storm (see `tests/topology.rs` — there is no
//! spanning tree in the reference switch, faithfully to the original).
//! The builder therefore *pre-teaches* every node's learning table with
//! every host MAC before traffic starts, exactly as an operator would
//! install static entries: traffic is all-unicast, each leaf reaches a
//! remote host through the statically chosen spine
//! (`spine = host % spines`), and the lookup `floods` counter staying at
//! zero across a run is the storm-free proof.

use crate::reference_switch::ReferenceSwitch;
use netfpga_core::board::BoardSpec;
use netfpga_core::sim::{KernelStats, Module};
use netfpga_core::telemetry::StatRegistry;
use netfpga_core::time::Time;
use netfpga_datapath::learn::LearnStats;
use netfpga_fabric::{run_fabric, FabricConfig, FabricNode, FabricReport, FabricTopology};
use netfpga_faults::{FaultPlan, TraceEntry};
use netfpga_packet::{EtherType, EthernetAddress, PacketBuilder};
use netfpga_phy::Wire;

impl FabricNode for ReferenceSwitch {
    fn run_until(&mut self, deadline: Time) {
        self.chassis.sim.run_until(deadline);
    }

    fn now(&self) -> Time {
        self.chassis.sim.now()
    }

    fn clock_period(&self) -> Time {
        self.chassis.sim.period(self.chassis.clk)
    }

    fn port_wires(&self, port: usize) -> (Wire, Wire) {
        self.chassis.port_wires(port)
    }

    fn add_fabric_module(&mut self, module: Box<dyn Module>) {
        self.chassis.sim.add_boxed_module(self.chassis.clk, module);
    }

    fn telemetry(&self) -> &StatRegistry {
        &self.chassis.telemetry
    }

    fn kernel_stats(&self) -> KernelStats {
        self.chassis.sim.kernel_stats()
    }
}

/// A leaf–spine fabric of reference switches.
///
/// Node indexing: leaves are nodes `0..leaves`, spines are nodes
/// `leaves..leaves+spines`. Each leaf has `host_ports` host-facing ports
/// (ports `0..host_ports`) and one uplink per spine (port
/// `host_ports + s` towards spine `s`); spine `s`'s port `l` connects to
/// leaf `l`. Host `h` (of `leaves · host_ports`) sits on leaf
/// `h / host_ports`, port `h % host_ports`.
#[derive(Debug, Clone, Copy)]
pub struct LeafSpine {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Host-facing ports per leaf.
    pub host_ports: usize,
    /// Propagation delay of every leaf–spine link — the fabric's
    /// lookahead.
    pub link_delay: Time,
    /// Build the switches with the kernel fast path (burst mode) on.
    pub fast_path: bool,
}

/// Learning-table capacity per switch (comfortably above any fabric
/// size this module builds).
const TABLE_CAPACITY: usize = 1024;
/// Aging limit for learned entries — far beyond any run horizon, so
/// pre-taught entries never age out mid-run.
const AGE_LIMIT: Time = Time::from_ms(10_000);

impl LeafSpine {
    /// The benchmark fabric (E16): 6 leaves × 2 spines × 2 host ports
    /// (12 hosts, 8 nodes — shard counts 1/2/4/8 divide evenly), 2 µs
    /// links, fast path on.
    pub fn bench() -> LeafSpine {
        LeafSpine {
            leaves: 6,
            spines: 2,
            host_ports: 2,
            link_delay: Time::from_us(2),
            fast_path: true,
        }
    }

    /// Total nodes (leaves + spines).
    pub fn nnodes(&self) -> usize {
        self.leaves + self.spines
    }

    /// Total hosts.
    pub fn nhosts(&self) -> usize {
        self.leaves * self.host_ports
    }

    /// Each host's traffic peer: the same port position one leaf over —
    /// always a *different* leaf, so every flow crosses the fabric.
    pub fn peer(&self, host: usize) -> usize {
        (host + self.host_ports) % self.nhosts()
    }

    /// The spine carrying traffic *towards* `host` (static selection).
    pub fn spine_for(&self, host: usize) -> usize {
        host % self.spines
    }

    /// The full-duplex leaf–spine link mesh.
    pub fn topology(&self) -> FabricTopology {
        let mut topo = FabricTopology::new(self.nnodes());
        for l in 0..self.leaves {
            for s in 0..self.spines {
                topo = topo.duplex(l, self.host_ports + s, self.leaves + s, l, self.link_delay);
            }
        }
        topo
    }

    /// The longest epoch the lookahead invariant allows for this fabric
    /// (probes one throwaway chassis for the core clock period).
    pub fn default_epoch(&self) -> Time {
        let probe = ReferenceSwitch::with_fast_path(
            &BoardSpec::sume(),
            1,
            16,
            Time::from_ms(1),
            self.fast_path,
        );
        let period = probe.chassis.sim.period(probe.chassis.clk);
        self.topology().max_safe_epoch(period)
    }

    /// The port on `node` that reaches `host` (local host port on its own
    /// leaf, the statically selected uplink on other leaves, the leaf
    /// port on spines).
    pub fn port_towards(&self, node: usize, host: usize) -> usize {
        let leaf = host / self.host_ports;
        if node < self.leaves {
            if leaf == node {
                host % self.host_ports
            } else {
                self.host_ports + self.spine_for(host)
            }
        } else {
            leaf
        }
    }

    /// Build node `node` of the fabric: a [`ReferenceSwitch`] with its
    /// learning table pre-taught for every host and, on leaves, each
    /// local host's `frames_per_host` frames to its cross-leaf peer
    /// already injected (line-rate paced from time zero).
    pub fn build_node(&self, node: usize, frames_per_host: usize) -> ReferenceSwitch {
        self.build_node_with_faults(node, frames_per_host, FaultPlan::none())
    }

    /// Like [`LeafSpine::build_node`], with `plan` armed on the node's
    /// fault plane. An inert plan yields a bit-identical node.
    pub fn build_node_with_faults(
        &self,
        node: usize,
        frames_per_host: usize,
        plan: FaultPlan,
    ) -> ReferenceSwitch {
        let nports = if node < self.leaves {
            self.host_ports + self.spines
        } else {
            self.leaves
        };
        let mut sw = ReferenceSwitch::with_faults(
            &BoardSpec::sume(),
            nports,
            TABLE_CAPACITY,
            AGE_LIMIT,
            self.fast_path,
            plan,
        );
        {
            // Pre-teach: learning `mac@port` is a `decide` with the MAC as
            // source on the port we want it bound to (the dst lookup it
            // also performs is a harmless hairpin hit).
            let mut core = sw.core.borrow_mut();
            for h in 0..self.nhosts() {
                let mac = host_mac(h);
                core.decide(mac, mac, self.port_towards(node, h) as u8, Time::ZERO);
            }
        }
        if node < self.leaves {
            for p in 0..self.host_ports {
                let h = node * self.host_ports + p;
                for seq in 0..frames_per_host {
                    sw.chassis.send(p, host_frame(h, self.peer(h), seq as u32));
                }
            }
        }
        sw
    }

    /// Run the fabric workload to `horizon` on `nshards` threads and
    /// harvest bit-comparable per-node traces. `nshards = 1` is the
    /// sequentialized reference run every other shard count must match
    /// exactly.
    pub fn run(
        &self,
        nshards: usize,
        epoch: Time,
        horizon: Time,
        frames_per_host: usize,
    ) -> FabricReport<NodeTrace> {
        self.run_with_faults(nshards, epoch, horizon, frames_per_host, |_| {
            FaultPlan::none()
        })
    }

    /// Like [`LeafSpine::run`], arming `plan_for(node)` on each node's
    /// fault plane. Per-node fault schedules are part of the workload:
    /// a faulted parallel run must still match its `nshards = 1`
    /// reference bit-for-bit (deliveries, lookup counters and the
    /// applied-fault trace).
    pub fn run_with_faults(
        &self,
        nshards: usize,
        epoch: Time,
        horizon: Time,
        frames_per_host: usize,
        plan_for: impl Fn(usize) -> FaultPlan + Sync,
    ) -> FabricReport<NodeTrace> {
        let topo = self.topology();
        let config = FabricConfig::new(nshards, epoch);
        run_fabric(
            &topo,
            &config,
            horizon,
            |node| self.build_node_with_faults(node, frames_per_host, plan_for(node)),
            |node, sw: &mut ReferenceSwitch| {
                let mut deliveries = Vec::new();
                if node < self.leaves {
                    for p in 0..self.host_ports {
                        for (bytes, at) in sw.chassis.recv_timed(p) {
                            deliveries.push((p, at, fnv64(&bytes)));
                        }
                    }
                }
                NodeTrace {
                    node,
                    deliveries,
                    lookup: sw.core.borrow().stats(),
                    faults: sw
                        .chassis
                        .faults
                        .as_ref()
                        .map(|f| f.trace())
                        .unwrap_or_default(),
                }
            },
        )
    }
}

/// The MAC address of host `h` (locally administered unicast).
pub fn host_mac(h: usize) -> EthernetAddress {
    EthernetAddress::new(0x02, 0x00, 0xfa, 0xb0, (h >> 8) as u8, h as u8)
}

/// One unicast workload frame from `src_host` to `dst_host`, tagged with
/// a per-flow sequence number so every frame on the wire is distinct.
pub fn host_frame(src_host: usize, dst_host: usize, seq: u32) -> Vec<u8> {
    let mut payload = [0u8; 50];
    payload[0] = src_host as u8;
    payload[1..5].copy_from_slice(&seq.to_le_bytes());
    PacketBuilder::new()
        .eth(host_mac(src_host), host_mac(dst_host))
        .raw(EtherType::Ipv4, &payload)
        .build()
}

/// One node's bit-comparable run outcome: every frame delivered to a
/// host port as `(port, wire-completion time, FNV-1a of the bytes)` in
/// drain order, plus the node's lookup counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Node index.
    pub node: usize,
    /// Host-port deliveries (empty on spines).
    pub deliveries: Vec<(usize, Time, u64)>,
    /// The node's learning/forwarding counters.
    pub lookup: LearnStats,
    /// The node's applied-fault trace (empty without an armed plan).
    pub faults: Vec<TraceEntry>,
}

/// Total frames delivered to host ports across the fabric.
pub fn total_delivered(report: &FabricReport<NodeTrace>) -> u64 {
    report
        .results
        .iter()
        .map(|t| t.deliveries.len() as u64)
        .sum()
}

/// FNV-1a over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold a word into an FNV-1a accumulator.
fn fnv_mix(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// A single order-sensitive signature of everything observable in a
/// fabric run: every delivery of every node plus the lookup counters.
/// Two runs are bit-identical iff their signatures match (up to hash
/// collision) — the cheap cross-shard-count equivalence check E16 uses.
pub fn trace_signature(report: &FabricReport<NodeTrace>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for t in &report.results {
        fnv_mix(&mut h, t.node as u64);
        for &(port, at, frame) in &t.deliveries {
            fnv_mix(&mut h, port as u64);
            fnv_mix(&mut h, at.as_ps());
            fnv_mix(&mut h, frame);
        }
        fnv_mix(&mut h, t.lookup.hits);
        fnv_mix(&mut h, t.lookup.floods);
        fnv_mix(&mut h, t.lookup.learned);
        fnv_mix(&mut h, t.lookup.learn_failures);
        fnv_mix(&mut h, t.faults.len() as u64);
        for e in &t.faults {
            fnv_mix(&mut h, e.at.as_ps());
            // `FaultKind` carries floats; its (deterministic) debug form
            // is the stable byte representation to fold.
            fnv_mix(&mut h, fnv64(format!("{:?}", e.kind).as_bytes()));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LeafSpine {
        LeafSpine {
            leaves: 2,
            spines: 2,
            host_ports: 2,
            link_delay: Time::from_us(2),
            fast_path: true,
        }
    }

    #[test]
    fn topology_shape() {
        let ls = small();
        let topo = ls.topology();
        assert_eq!(topo.nnodes, 4);
        // 2 leaves × 2 spines × 2 directions.
        assert_eq!(topo.links.len(), 8);
        assert_eq!(topo.min_delay(), Some(Time::from_us(2)));
        topo.validate();
        // Every flow crosses leaves.
        for h in 0..ls.nhosts() {
            assert_ne!(h / ls.host_ports, ls.peer(h) / ls.host_ports, "host {h}");
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let ls = small();
        let epoch = ls.default_epoch();
        let horizon = Time::from_us(60);
        let frames = 5;
        let reference = ls.run(1, epoch, horizon, frames);
        assert_eq!(
            total_delivered(&reference),
            (ls.nhosts() * frames) as u64,
            "every unicast frame arrives at its peer"
        );
        for t in &reference.results {
            assert_eq!(
                t.lookup.floods, 0,
                "node {}: pre-taught fabric never floods",
                t.node
            );
        }
        let sig = trace_signature(&reference);
        for nshards in [2, 4] {
            let got = ls.run(nshards, epoch, horizon, frames);
            assert_eq!(got.results, reference.results, "nshards={nshards}");
            assert_eq!(trace_signature(&got), sig, "nshards={nshards}");
            assert_eq!(got.stats.crossed, reference.stats.crossed);
        }
    }

    #[test]
    fn fabric_telemetry_lands_in_switch_registries() {
        let ls = small();
        let topo = ls.topology();
        let config = FabricConfig::new(2, ls.default_epoch());
        let report = run_fabric(
            &topo,
            &config,
            Time::from_us(40),
            |node| ls.build_node(node, 2),
            |_, sw: &mut ReferenceSwitch| {
                let t = &sw.chassis.telemetry;
                (
                    t.get("fabric.crossed"),
                    t.get("fabric.epochs"),
                    t.get("kernel.steps"),
                )
            },
        );
        for (node, &(crossed, epochs, steps)) in report.results.iter().enumerate() {
            assert!(crossed.unwrap() > 0, "node {node} shipped frames");
            assert_eq!(epochs.unwrap(), report.stats.epochs, "node {node}");
            assert!(steps.unwrap() > 0, "node {node}");
        }
        assert_eq!(report.stats.blocked, 0);
        assert!(report.stats.kernel.steps > 0, "kernel counters aggregated");
    }
}
