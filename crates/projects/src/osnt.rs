//! OSNT — the Open Source Network Tester (Antichi et al., IEEE Network
//! 2014), the paper's flagship test-and-measurement project.
//!
//! Per port, a rate-controlled **traffic generator** emits probe frames
//! carrying a stream id, sequence number and transmit timestamp in the UDP
//! payload, and a **capture engine** timestamps and decodes returning
//! probes. From the two, OSNT reports throughput, one-way latency
//! (histogrammed) and loss — without the user building any device of
//! their own, which is precisely the §3 "test and measurement researcher"
//! use case.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::AddressMap;
use netfpga_core::resources::ResourceCost;
use netfpga_core::rng::SimRng;
use netfpga_core::sim::{Module, TickContext};
use netfpga_core::stats::Histogram;
use netfpga_core::stream::{segment, Meta, Reassembler, StreamRx, StreamTx};
use netfpga_core::time::{BitRate, Time};
use netfpga_datapath::blocks;
use netfpga_datapath::ParsedHeaders;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Magic bytes marking an OSNT probe payload.
pub const PROBE_MAGIC: [u8; 4] = *b"OSNT";
/// Bytes of probe header inside the UDP payload:
/// magic(4) + stream(2) + seq(8) + tx_time(8).
pub const PROBE_HEADER: usize = 22;
/// Minimum probe frame length (headers + probe payload).
pub const MIN_PROBE_FRAME: usize = 14 + 20 + 8 + PROBE_HEADER;

/// Inter-departure spacing of generated probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Constant bit rate: fixed inter-departure time from the target rate.
    Uniform,
    /// Poisson arrivals with the target rate as the mean (seeded).
    Poisson {
        /// RNG seed for the exponential inter-arrival draw.
        seed: u64,
    },
}

/// Generator configuration for one stream.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total frame length (≥ [`MIN_PROBE_FRAME`]).
    pub frame_len: usize,
    /// Target offered rate (payload perspective: frame bits on the wire
    /// per second, excluding preamble/IFG).
    pub rate: BitRate,
    /// Probes to send.
    pub count: u64,
    /// Stream identifier stamped into every probe.
    pub stream_id: u16,
    /// Departure process.
    pub spacing: Spacing,
    /// IMIX mode: when set, each probe's length is drawn from the classic
    /// simple-IMIX mix (64/570/1514 bytes at 7:4:1) with this seed instead
    /// of using `frame_len`. Lengths below the probe minimum are clamped.
    pub imix_seed: Option<u64>,
    /// Addressing of the probe frames.
    pub src_mac: EthernetAddress,
    /// Destination MAC.
    pub dst_mac: EthernetAddress,
    /// Source IPv4.
    pub src_ip: Ipv4Address,
    /// Destination IPv4.
    pub dst_ip: Ipv4Address,
}

impl GeneratorConfig {
    /// A ready-to-use probe stream at `rate` with `frame_len`-byte frames.
    pub fn probe(stream_id: u16, rate: BitRate, frame_len: usize, count: u64) -> GeneratorConfig {
        GeneratorConfig {
            frame_len: frame_len.max(MIN_PROBE_FRAME),
            rate,
            count,
            stream_id,
            spacing: Spacing::Uniform,
            imix_seed: None,
            src_mac: EthernetAddress::new(2, 0x05, 0x47, 0, 0, stream_id as u8),
            dst_mac: EthernetAddress::new(2, 0x05, 0x47, 0xff, 0, stream_id as u8),
            src_ip: Ipv4Address::new(10, 99, 0, 1),
            dst_ip: Ipv4Address::new(10, 99, 0, 2),
        }
    }
}

#[derive(Debug, Default)]
struct GenShared {
    config: Option<GeneratorConfig>,
    sent: u64,
    running: bool,
}

/// Host-side handle to one generator.
#[derive(Debug, Clone, Default)]
pub struct GeneratorHandle {
    shared: Rc<RefCell<GenShared>>,
}

impl GeneratorHandle {
    /// Arm the generator with a configuration and start it.
    pub fn start(&self, config: GeneratorConfig) {
        assert!(
            config.frame_len >= MIN_PROBE_FRAME,
            "frame too short for probe header"
        );
        let mut s = self.shared.borrow_mut();
        s.config = Some(config);
        s.sent = 0;
        s.running = true;
    }

    /// Probes emitted so far.
    pub fn sent(&self) -> u64 {
        self.shared.borrow().sent
    }

    /// True when the configured count has been emitted.
    pub fn done(&self) -> bool {
        let s = self.shared.borrow();
        match &s.config {
            Some(c) => s.sent >= c.count,
            None => true,
        }
    }
}

/// The per-port traffic generator module.
pub struct TrafficGenerator {
    name: String,
    output: StreamTx,
    src_port: u8,
    shared: Rc<RefCell<GenShared>>,
    next_emit: Time,
    rng: SimRng,
    rng_seed: u64,
    words: VecDeque<netfpga_core::stream::Word>,
}

impl TrafficGenerator {
    /// Create a generator feeding `output`; returns the module + handle.
    pub fn new(name: &str, output: StreamTx, src_port: u8) -> (TrafficGenerator, GeneratorHandle) {
        let handle = GeneratorHandle::default();
        (
            TrafficGenerator {
                name: name.to_string(),
                output,
                src_port,
                shared: handle.shared.clone(),
                next_emit: Time::ZERO,
                rng: SimRng::new(0x05471),
                rng_seed: 0x05471,
                words: VecDeque::new(),
            },
            handle,
        )
    }

    /// Draw the classic simple-IMIX frame length (7:4:1 over 64/570/1514),
    /// clamped to the probe minimum.
    fn imix_len(rng: &mut SimRng) -> usize {
        let len = match rng.below(12) {
            0..=6 => 64,
            7..=10 => 570,
            _ => 1514,
        };
        len.max(MIN_PROBE_FRAME)
    }

    fn build_probe(config: &GeneratorConfig, frame_len: usize, seq: u64, now: Time) -> Vec<u8> {
        let payload_len = frame_len - (14 + 20 + 8);
        let mut payload = Vec::with_capacity(payload_len);
        payload.extend_from_slice(&PROBE_MAGIC);
        payload.extend_from_slice(&config.stream_id.to_be_bytes());
        payload.extend_from_slice(&seq.to_be_bytes());
        payload.extend_from_slice(&now.as_ps().to_be_bytes());
        payload.resize(payload_len, 0x5a);
        PacketBuilder::new()
            .eth(config.src_mac, config.dst_mac)
            .ipv4(config.src_ip, config.dst_ip)
            .udp(0x0547, 0x0547 + config.stream_id, &payload)
            .pad_to(frame_len)
            .build()
    }
}

impl Module for TrafficGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &TickContext) {
        // Stream out the current frame a word per cycle.
        if !self.words.is_empty() {
            if self.output.can_push() {
                let word = self.words.pop_front().expect("non-empty");
                self.output.push(word);
            }
            return;
        }
        // Start the next frame when its departure time arrives.
        let mut s = self.shared.borrow_mut();
        let Some(config) = s.config.clone() else {
            return;
        };
        if !s.running || s.sent >= config.count || ctx.now < self.next_emit {
            return;
        }
        // Reseed once per configured run so IMIX/Poisson draws are
        // reproducible per configuration.
        let want_seed = match (config.imix_seed, config.spacing) {
            (Some(seed), _) => seed,
            (None, Spacing::Poisson { seed }) => seed,
            _ => 0x05471,
        };
        if s.sent == 0 && self.rng_seed != want_seed {
            self.rng = SimRng::new(want_seed);
            self.rng_seed = want_seed;
        }
        let frame_len = match config.imix_seed {
            Some(_) => Self::imix_len(&mut self.rng),
            None => config.frame_len,
        };
        let frame = Self::build_probe(&config, frame_len, s.sent, ctx.now);
        let meta = Meta {
            len: frame.len() as u16,
            src_port: self.src_port,
            ingress_time: ctx.now,
            ..Default::default()
        };
        self.words = segment(&frame, self.output.width(), meta).into();
        s.sent += 1;
        // Schedule the next departure.
        let mean_gap = config.rate.time_for_bytes(frame.len() as u64);
        let gap = match config.spacing {
            Spacing::Uniform => mean_gap,
            Spacing::Poisson { .. } => {
                Time::from_ps(self.rng.exp(mean_gap.as_ps() as f64).round() as u64)
            }
        };
        let base = if self.next_emit == Time::ZERO {
            ctx.now
        } else {
            self.next_emit
        };
        self.next_emit = base + gap;
    }

    fn reset(&mut self) {
        self.words.clear();
        self.next_emit = Time::ZERO;
        let mut s = self.shared.borrow_mut();
        s.sent = 0;
        s.running = false;
    }
}

/// One decoded probe arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Stream id from the payload.
    pub stream_id: u16,
    /// Sequence number.
    pub seq: u64,
    /// Transmit timestamp (from the payload).
    pub tx_time: Time,
    /// Receive timestamp (capture clock).
    pub rx_time: Time,
}

impl ProbeRecord {
    /// One-way latency of this probe.
    pub fn latency(&self) -> Time {
        self.rx_time.saturating_sub(self.tx_time)
    }
}

#[derive(Debug, Default)]
struct CapShared {
    records: Vec<ProbeRecord>,
    /// Every captured frame with its rx timestamp (probe or not), in
    /// arrival order — the raw capture OSNT exports as pcap. Mirrored
    /// frames share the datapath's backing buffer (a refcount bump, not
    /// a copy).
    frames: Vec<(Time, PktBuf)>,
    non_probe: u64,
    bytes: u64,
}

/// Host-side handle to one capture engine.
#[derive(Debug, Clone, Default)]
pub struct CaptureHandle {
    shared: Rc<RefCell<CapShared>>,
}

impl CaptureHandle {
    /// Probes captured so far.
    pub fn count(&self) -> usize {
        self.shared.borrow().records.len()
    }

    /// Frames seen that were not OSNT probes.
    pub fn non_probe(&self) -> u64 {
        self.shared.borrow().non_probe
    }

    /// Total bytes captured.
    pub fn bytes(&self) -> u64 {
        self.shared.borrow().bytes
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<ProbeRecord> {
        self.shared.borrow().records.clone()
    }

    /// Latency histogram (picoseconds) over all captured probes.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in self.shared.borrow().records.iter() {
            h.record(r.latency().as_ps());
        }
        h
    }

    /// Lost probes of `stream_id` assuming `expected` were sent: counts
    /// sequence numbers in `0..expected` never captured.
    pub fn losses(&self, stream_id: u16, expected: u64) -> u64 {
        let shared = self.shared.borrow();
        let mut seen = vec![false; expected as usize];
        for r in shared.records.iter().filter(|r| r.stream_id == stream_id) {
            if let Some(slot) = seen.get_mut(r.seq as usize) {
                *slot = true;
            }
        }
        seen.iter().filter(|&&s| !s).count() as u64
    }

    /// Every captured frame (probes and other traffic) with its receive
    /// timestamp, in arrival order.
    pub fn frames(&self) -> Vec<(Time, Vec<u8>)> {
        self.shared
            .borrow()
            .frames
            .iter()
            .map(|(t, f)| (*t, f.to_vec()))
            .collect()
    }

    /// Attribute the raw capture to IPv4 flows: parse every captured
    /// frame's five-tuple and return per-flow packet/byte totals in
    /// first-seen order. Non-IPv4 frames (OSNT probes included, which
    /// ride a raw ethertype) are skipped. This is host-side analysis of
    /// the capture buffer; the capture hot path is untouched.
    pub fn flows(&self) -> Vec<netfpga_flowmon::FlowRecord> {
        use netfpga_flowmon::{FiveTuple, FlowRecord};
        let shared = self.shared.borrow();
        let mut out: Vec<FlowRecord> = Vec::new();
        for (_, f) in shared.frames.iter() {
            let Some(ft) = FiveTuple::parse(f.bytes()) else {
                continue;
            };
            let len = f.len() as u64;
            match out.iter_mut().find(|r| r.flow == ft) {
                Some(r) => {
                    r.packets += 1;
                    r.bytes += len;
                    r.estimate += 1;
                }
                None => out.push(FlowRecord {
                    flow: ft,
                    packets: 1,
                    bytes: len,
                    estimate: 1,
                }),
            }
        }
        out
    }

    /// The `n` largest captured flows by exact packet count (ties broken
    /// by the flow's total order — deterministic like the flow-monitor's
    /// [`netfpga_flowmon::FlowRecord::rank_key`] ranking).
    pub fn top_flows(&self, n: usize) -> Vec<netfpga_flowmon::FlowRecord> {
        let mut v = self.flows();
        v.sort_by_key(|r| core::cmp::Reverse(r.rank_key()));
        v.truncate(n);
        v
    }

    /// Export the raw capture as a nanosecond pcap stream (the format the
    /// real OSNT capture pipeline hands to analysis tools). Frame payloads
    /// stream straight from the shared capture buffers — no copies.
    /// Returns the number of records written.
    pub fn export_pcap<W: std::io::Write>(&self, w: W) -> std::io::Result<usize> {
        let shared = self.shared.borrow();
        crate::pcap::write_pcap(w, shared.frames.iter().map(|(t, f)| (*t, f)))
    }

    /// Measured average receive rate in bits/s between first and last
    /// capture (frame bytes, excluding wire overhead), or `None` with
    /// fewer than two records.
    pub fn measured_rate(&self, frame_len: u64) -> Option<f64> {
        let shared = self.shared.borrow();
        let first = shared.records.first()?;
        let last = shared.records.last()?;
        if shared.records.len() < 2 || last.rx_time <= first.rx_time {
            return None;
        }
        let span = (last.rx_time - first.rx_time).as_secs_f64();
        Some(((shared.records.len() - 1) as f64 * frame_len as f64 * 8.0) / span)
    }
}

/// The per-port capture engine module.
pub struct CaptureEngine {
    name: String,
    input: StreamRx,
    reasm: Reassembler,
    shared: Rc<RefCell<CapShared>>,
}

impl CaptureEngine {
    /// Create a capture engine draining `input`; returns module + handle.
    pub fn new(name: &str, input: StreamRx) -> (CaptureEngine, CaptureHandle) {
        let handle = CaptureHandle::default();
        (
            CaptureEngine {
                name: name.to_string(),
                input,
                reasm: Reassembler::new(),
                shared: handle.shared.clone(),
            },
            handle,
        )
    }

    /// Decode a probe payload from a frame, if present.
    pub fn decode(frame: &[u8]) -> Option<(u16, u64, Time)> {
        let h = ParsedHeaders::parse(frame);
        h.ipv4?;
        // UDP payload begins after eth(14, assume untagged probes) + ip(20) + udp(8).
        let payload = frame.get(42..)?;
        if payload.len() < PROBE_HEADER || payload[0..4] != PROBE_MAGIC {
            return None;
        }
        let stream_id = u16::from_be_bytes([payload[4], payload[5]]);
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&payload[6..14]);
        let mut ts_bytes = [0u8; 8];
        ts_bytes.copy_from_slice(&payload[14..22]);
        Some((
            stream_id,
            u64::from_be_bytes(seq_bytes),
            Time::from_ps(u64::from_be_bytes(ts_bytes)),
        ))
    }
}

impl Module for CaptureEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &TickContext) {
        if let Some(word) = self.input.pop() {
            if let Some((frame, meta)) = self.reasm.push(word) {
                let mut s = self.shared.borrow_mut();
                s.bytes += frame.len() as u64;
                let stamp = if meta.ingress_time > Time::ZERO {
                    meta.ingress_time
                } else {
                    ctx.now
                };
                // Mirror into the capture ring by bumping the refcount —
                // the datapath's buffer is never duplicated.
                s.frames.push((stamp, frame.clone()));
                match Self::decode(&frame) {
                    Some((stream_id, seq, tx_time)) => {
                        // rx timestamp: the MAC's ingress stamp, which is
                        // frame-arrival-complete time — higher fidelity
                        // than "when the capture engine got around to it".
                        let rx_time = if meta.ingress_time > Time::ZERO {
                            meta.ingress_time
                        } else {
                            ctx.now
                        };
                        s.records.push(ProbeRecord {
                            stream_id,
                            seq,
                            tx_time,
                            rx_time,
                        });
                    }
                    None => s.non_probe += 1,
                }
            }
        }
    }

    fn reset(&mut self) {
        self.reasm = Reassembler::new();
        let mut s = self.shared.borrow_mut();
        s.records.clear();
        s.frames.clear();
        s.non_probe = 0;
        s.bytes = 0;
    }
}

/// Register base of the per-port OSNT control blocks; port `i`'s block
/// lives at `OSNT_BASE + i * OSNT_PORT_STRIDE`.
pub const OSNT_BASE: u32 = 0x6000;
/// Address stride between per-port blocks.
pub const OSNT_PORT_STRIDE: u32 = 0x100;

/// Per-port OSNT register block (word offsets):
///
/// | word | register |
/// |------|----------|
/// | 0 | command: 1 = start generator with the staged config |
/// | 1 | rate in Mb/s |
/// | 2 | frame length |
/// | 3 | probe count |
/// | 4 | stream id |
/// | 5 | spacing: 0 = uniform, nonzero = Poisson with this seed |
/// | 8 | generator: probes sent (RO) |
/// | 9 | capture: probes received (RO) |
/// | 10 | capture: non-probe frames (RO) |
/// | 11 | capture: latency p50 in ns (RO, computed on read) |
/// | 12 | capture: latency p99 in ns (RO, computed on read) |
struct OsntRegisters {
    generator: GeneratorHandle,
    capture: CaptureHandle,
    stage: [u32; 8],
}

impl netfpga_core::regs::RegisterSpace for OsntRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        match offset / 4 {
            w @ 1..=7 => self.stage[w as usize],
            8 => self.generator.sent() as u32,
            9 => self.capture.count() as u32,
            10 => self.capture.non_probe() as u32,
            11 => {
                let mut h = self.capture.latency_histogram();
                (h.percentile(50.0).unwrap_or(0) / 1000) as u32
            }
            12 => {
                let mut h = self.capture.latency_histogram();
                (h.percentile(99.0).unwrap_or(0) / 1000) as u32
            }
            _ => netfpga_core::regs::UNMAPPED_READ,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset / 4 {
            0 if value == 1 => {
                let spacing = if self.stage[5] == 0 {
                    Spacing::Uniform
                } else {
                    Spacing::Poisson {
                        seed: u64::from(self.stage[5]),
                    }
                };
                self.generator.start(GeneratorConfig {
                    spacing,
                    ..GeneratorConfig::probe(
                        self.stage[4] as u16,
                        BitRate::mbps(u64::from(self.stage[1]).max(1)),
                        self.stage[2] as usize,
                        u64::from(self.stage[3]),
                    )
                });
            }
            w @ 1..=7 => self.stage[w as usize] = value,
            _ => {}
        }
    }
}

/// The assembled OSNT tester: a generator and a capture engine on every
/// port.
pub struct OsntTester {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// Per-port generator handles.
    pub generators: Vec<GeneratorHandle>,
    /// Per-port capture handles.
    pub captures: Vec<CaptureHandle>,
}

impl OsntTester {
    /// Build on `spec` with `nports` ports.
    pub fn new(spec: &BoardSpec, nports: usize) -> OsntTester {
        OsntTester::with_faults(spec, nports, netfpga_faults::FaultPlan::none())
    }

    /// Same, with the fault-injection plane spliced in executing `plan`
    /// (see [`Chassis::with_faults`]). Measurement integrity under
    /// faults: a probe corrupted by injected bit errors arrives with a
    /// failing FCS and is dropped by the receiving MAC *before* the
    /// capture engine timestamps it — corruption shows up as honest
    /// loss, never as a bogus latency sample.
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        plan: netfpga_faults::FaultPlan,
    ) -> OsntTester {
        let (mut chassis, io) = Chassis::with_faults(spec, nports, AddressMap::new(), false, plan);
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let mut generators = Vec::new();
        let mut captures = Vec::new();
        for (i, (rx, tx)) in from_ports.into_iter().zip(to_ports).enumerate() {
            let (generator, gh) = TrafficGenerator::new(&format!("osnt_gen{i}"), tx, i as u8);
            let (capture, ch) = CaptureEngine::new(&format!("osnt_cap{i}"), rx);
            chassis.add_module(generator);
            chassis.add_module(capture);
            chassis.map.mount(
                &format!("osnt_port{i}"),
                OSNT_BASE + i as u32 * OSNT_PORT_STRIDE,
                OSNT_PORT_STRIDE,
                netfpga_core::regs::shared(OsntRegisters {
                    generator: gh.clone(),
                    capture: ch.clone(),
                    stage: [0; 8],
                }),
            );
            let (g, c, c2) = (gh.clone(), ch.clone(), ch.clone());
            chassis
                .telemetry
                .gauge(&format!("osnt.port{i}.gen.sent"), move || g.sent());
            chassis
                .telemetry
                .gauge(&format!("osnt.port{i}.cap.probes"), move || {
                    c.count() as u64
                });
            chassis
                .telemetry
                .gauge(&format!("osnt.port{i}.cap.non_probe"), move || {
                    c2.non_probe()
                });
            generators.push(gh);
            captures.push(ch);
        }
        chassis.attach_mmio();
        OsntTester {
            chassis,
            generators,
            captures,
        }
    }

    /// Approximate FPGA cost (experiment E7).
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::GENERATOR_CORE.times(nports)
            + blocks::CAPTURE_CORE.times(nports)
            + blocks::TIMESTAMP_UNIT.times(nports * 2)
            + blocks::RATE_LIMITER.times(nports)
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "pcie_dma",
            "reg_interconnect",
            "generator_core",
            "capture_core",
            "timestamp_unit",
            "rate_limiter",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_phy::LinkConfig;

    /// OSNT with port 0 looped through an ideal link back to itself.
    fn looped(delay: Time) -> OsntTester {
        let mut o = OsntTester::new(&BoardSpec::sume(), 2);
        let (to_board, from_board) = o.chassis.port_wires(0);
        o.chassis.add_link(
            "dut",
            from_board,
            to_board,
            LinkConfig {
                delay,
                ..LinkConfig::default()
            },
        );
        o
    }

    #[test]
    fn probe_build_decode_roundtrip() {
        let config = GeneratorConfig::probe(7, BitRate::gbps(1), 128, 10);
        let frame = TrafficGenerator::build_probe(&config, config.frame_len, 42, Time::from_us(3));
        assert_eq!(frame.len(), 128);
        let (stream, seq, ts) = CaptureEngine::decode(&frame).expect("decodes");
        assert_eq!(stream, 7);
        assert_eq!(seq, 42);
        assert_eq!(ts, Time::from_us(3));
        // A non-probe frame does not decode.
        assert!(CaptureEngine::decode(&frame[..60]).is_none());
    }

    #[test]
    fn capture_attributes_flows_host_side() {
        use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
        let cap = CaptureHandle::default();
        let mk = |last: u8, sport: u16| {
            PacketBuilder::new()
                .eth(
                    EthernetAddress::new(2, 0, 0, 0, 0, 1),
                    EthernetAddress::new(2, 0, 0, 0, 0, 2),
                )
                .ipv4(
                    Ipv4Address::new(10, 0, 0, last),
                    Ipv4Address::new(10, 0, 1, 1),
                )
                .udp(sport, 80, &[0; 30])
                .build()
        };
        {
            let mut s = cap.shared.borrow_mut();
            for _ in 0..3 {
                s.frames.push((Time::ZERO, PktBuf::copy_from(&mk(1, 1000))));
            }
            s.frames.push((Time::ZERO, PktBuf::copy_from(&mk(2, 2000))));
            // A non-IP frame is skipped by attribution.
            s.frames.push((Time::ZERO, PktBuf::copy_from(&[0u8; 60])));
        }
        let flows = cap.flows();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].packets, 3, "first-seen order");
        let top = cap.top_flows(1);
        assert_eq!(top[0].flow.src_port, 1000);
        assert_eq!(top[0].packets, 3);
    }

    #[test]
    fn generator_hits_target_rate() {
        let mut o = looped(Time::from_ns(10));
        let n = 200;
        o.generators[0].start(GeneratorConfig::probe(1, BitRate::gbps(2), 500, n));
        let cap = o.captures[0].clone();
        let done = o
            .chassis
            .run_while(Time::from_ms(10), move || (cap.count() as u64) < n);
        assert!(done, "captured {}", o.captures[0].count());
        let rate = o.captures[0].measured_rate(500).expect("rate");
        assert!(
            (rate - 2e9).abs() / 2e9 < 0.03,
            "measured {:.3} Gb/s",
            rate / 1e9
        );
    }

    #[test]
    fn latency_measurement_tracks_ground_truth() {
        let delay = Time::from_us(5);
        let mut o = looped(delay);
        let n = 50;
        o.generators[0].start(GeneratorConfig::probe(1, BitRate::gbps(1), 200, n));
        let cap = o.captures[0].clone();
        assert!(o
            .chassis
            .run_while(Time::from_ms(10), move || (cap.count() as u64) < n));
        let mut h = o.captures[0].latency_histogram();
        let p50 = Time::from_ps(h.percentile(50.0).unwrap());
        // Ground truth: link delay + one serialization (tx wire time) +
        // pipeline cycles. Must be >= delay and within a few us of it.
        assert!(p50 >= delay, "p50 {p50}");
        assert!(p50 < delay + Time::from_us(2), "p50 {p50} way over");
    }

    #[test]
    fn loss_measurement_matches_injected_loss() {
        let mut o = OsntTester::new(&BoardSpec::sume(), 2);
        let (to_board, from_board) = o.chassis.port_wires(0);
        o.chassis.add_link(
            "lossy_dut",
            from_board,
            to_board,
            LinkConfig {
                loss_probability: 0.25,
                seed: 42,
                ..LinkConfig::default()
            },
        );
        let n = 400;
        o.generators[0].start(GeneratorConfig::probe(3, BitRate::gbps(5), 200, n));
        let gen = o.generators[0].clone();
        assert!(o.chassis.run_while(Time::from_ms(10), move || !gen.done()));
        o.chassis.run_for(Time::from_us(100)); // drain in-flight
        let lost = o.captures[0].losses(3, n);
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.07, "loss rate {rate}");
        assert_eq!(
            o.captures[0].count() as u64 + lost,
            n,
            "every probe is either captured or lost"
        );
    }

    #[test]
    fn poisson_spacing_varies_gaps() {
        let mut o = looped(Time::from_ns(5));
        let n = 100;
        o.generators[0].start(GeneratorConfig {
            spacing: Spacing::Poisson { seed: 9 },
            ..GeneratorConfig::probe(1, BitRate::gbps(1), 128, n)
        });
        let cap = o.captures[0].clone();
        assert!(o
            .chassis
            .run_while(Time::from_ms(20), move || (cap.count() as u64) < n));
        let recs = o.captures[0].records();
        let gaps: Vec<u64> = recs
            .windows(2)
            .map(|w| (w[1].tx_time - w[0].tx_time).as_ps())
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let var = gaps.iter().map(|&g| (g as f64 - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        // Exponential gaps: coefficient of variation ~ 1; uniform would be ~0.
        assert!(cv > 0.5, "cv {cv} too regular for Poisson");
    }

    #[test]
    fn imix_mode_mixes_frame_sizes() {
        let mut o = looped(Time::from_ns(50));
        let n = 300;
        o.generators[0].start(GeneratorConfig {
            imix_seed: Some(17),
            ..GeneratorConfig::probe(1, BitRate::gbps(5), 512, n)
        });
        let cap = o.captures[0].clone();
        assert!(o
            .chassis
            .run_while(Time::from_ms(20), move || (cap.count() as u64) < n));
        let mut counts = std::collections::BTreeMap::new();
        for (_, f) in o.captures[0].frames() {
            *counts.entry(f.len()).or_insert(0u32) += 1;
        }
        // Three distinct sizes, in roughly 7:4:1 proportion.
        assert_eq!(counts.len(), 3, "{counts:?}");
        let small = counts[&MIN_PROBE_FRAME.max(64)];
        let big = counts[&1514];
        assert!(small > big, "{counts:?}");
        // Determinism: same seed, same mix.
        let mut o2 = looped(Time::from_ns(50));
        o2.generators[0].start(GeneratorConfig {
            imix_seed: Some(17),
            ..GeneratorConfig::probe(1, BitRate::gbps(5), 512, n)
        });
        let cap2 = o2.captures[0].clone();
        assert!(o2
            .chassis
            .run_while(Time::from_ms(20), move || (cap2.count() as u64) < n));
        let sizes1: Vec<usize> = o.captures[0]
            .frames()
            .iter()
            .map(|(_, f)| f.len())
            .collect();
        let sizes2: Vec<usize> = o2.captures[0]
            .frames()
            .iter()
            .map(|(_, f)| f.len())
            .collect();
        assert_eq!(sizes1, sizes2);
    }

    #[test]
    fn pcap_export_roundtrips_capture() {
        let mut o = looped(Time::from_ns(50));
        o.generators[0].start(GeneratorConfig::probe(1, BitRate::gbps(1), 128, 5));
        let cap = o.captures[0].clone();
        assert!(o
            .chassis
            .run_while(Time::from_ms(5), move || cap.count() < 5));
        let mut buf = Vec::new();
        let n = o.captures[0].export_pcap(&mut buf).unwrap();
        assert_eq!(n, 5);
        let back = crate::pcap::read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), 5);
        // Frames in the pcap match the capture, with ns-truncated stamps.
        let frames = o.captures[0].frames();
        for ((t_pcap, f_pcap), (t_cap, f_cap)) in back.iter().zip(&frames) {
            assert_eq!(f_pcap, f_cap);
            assert_eq!(t_pcap.as_ns(), t_cap.as_ns());
        }
        // Timestamps are monotonically increasing.
        assert!(back.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// Satellite: timestamp integrity under bit errors. Probes corrupted
    /// in flight fail the RX MAC's CRC-32 check and are dropped before
    /// the capture engine ever timestamps them, so the latency
    /// distribution stays pinned to ground truth no matter the BER —
    /// corruption is reported as loss, never as a wild latency sample or
    /// a garbled probe decode.
    #[test]
    fn bit_errors_never_produce_bogus_latency_samples() {
        use netfpga_faults::{FaultKind, FaultPlan};
        let delay = Time::from_us(5);
        let plan = FaultPlan::new(11).at(Time::ZERO, FaultKind::SetBer { port: 0, ber: 2e-5 });
        let mut o = OsntTester::with_faults(&BoardSpec::sume(), 2, plan);
        let (to_board, from_board) = o.chassis.port_wires(0);
        o.chassis.add_link(
            "dut",
            from_board,
            to_board,
            LinkConfig {
                delay,
                ..LinkConfig::default()
            },
        );
        let n = 300;
        o.generators[0].start(GeneratorConfig::probe(1, BitRate::gbps(2), 400, n));
        let gen = o.generators[0].clone();
        assert!(o.chassis.run_while(Time::from_ms(20), move || !gen.done()));
        o.chassis.run_for(Time::from_us(200)); // drain in-flight probes

        let faults = o.chassis.faults.clone().expect("armed");
        let corrupted = faults.counters().frames_corrupted.get();
        assert!(corrupted > 0, "BER high enough to hit some probes");
        // Every corrupted probe died at the RX MAC's FCS check (a frame
        // can be hit in both directions, hence at-most-equal) ...
        let bad_fcs = o.chassis.rx_mac_stats(0).bad_fcs;
        assert!(
            bad_fcs > 0 && bad_fcs <= corrupted,
            "bad_fcs {bad_fcs} of {corrupted}"
        );
        // ... so the capture ledger balances: every probe was either
        // cleanly captured or honestly lost, and every loss is an FCS drop.
        let lost = o.captures[0].losses(1, n);
        assert_eq!(
            o.captures[0].count() as u64 + lost,
            n,
            "captured + lost = sent"
        );
        assert_eq!(lost, bad_fcs, "every loss is a pre-timestamp FCS drop");
        assert_eq!(o.captures[0].non_probe(), 0, "no garbled probe decodes");
        // The pinned property: no bogus samples. Every record is a valid
        // probe of this stream and its latency sits at ground truth
        // (link delay + serialization + pipeline), never wild.
        let records = o.captures[0].records();
        for r in &records {
            assert_eq!(r.stream_id, 1);
            assert!(r.seq < n, "seq {} out of range", r.seq);
            assert!(
                r.latency() >= delay,
                "latency {} below ground truth",
                r.latency()
            );
            assert!(
                r.latency() < delay + Time::from_us(2),
                "bogus latency sample {} from a corrupted probe",
                r.latency()
            );
        }
    }

    #[test]
    fn counts_non_probe_traffic() {
        let mut o = OsntTester::new(&BoardSpec::sume(), 1);
        o.chassis.send(0, vec![0u8; 100]);
        o.chassis.run_for(Time::from_us(10));
        assert_eq!(o.captures[0].non_probe(), 1);
        assert_eq!(o.captures[0].count(), 0);
        assert_eq!(o.captures[0].bytes(), 100);
    }
}
