//! The reference NIC project: every NetFPGA release's first design.
//!
//! Received frames flow `rx MACs → input arbiter → stats → DMA → host`;
//! host frames flow `DMA → output queues → tx MACs`, with the egress port
//! taken from the destination mask the driver sets in the packet metadata
//! (the real driver writes it into `tuser` through the DMA descriptor).

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::regs::AddressMap;
use netfpga_core::resources::ResourceCost;
use netfpga_core::stream::Stream;
use netfpga_datapath::blocks;
use netfpga_datapath::pktstats::{StatsHandles, StatsRegisters, StatsStage};
use netfpga_datapath::queues::{OutputQueues, QueueConfig};
use netfpga_datapath::sched::Fifo;
use netfpga_datapath::InputArbiter;

/// Register-map base of the RX statistics block.
pub const STATS_BASE: u32 = 0x0000;

/// The assembled reference NIC.
pub struct ReferenceNic {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// RX-path statistics handles (same counters the register block shows).
    pub rx_stats: StatsHandles,
}

impl ReferenceNic {
    /// Build the NIC on `spec` with `nports` ports.
    pub fn new(spec: &BoardSpec, nports: usize) -> ReferenceNic {
        ReferenceNic::with_fast_path(spec, nports, false)
    }

    /// Like [`ReferenceNic::new`], with the kernel fast path optionally
    /// enabled: MACs, arbiter, stats and output queues run in burst mode
    /// (whole packets per tick). Delivered packets, ports and counters are
    /// identical; cycle-level pacing inside the pipeline is collapsed.
    pub fn with_fast_path(spec: &BoardSpec, nports: usize, fast_path: bool) -> ReferenceNic {
        ReferenceNic::with_faults(spec, nports, fast_path, netfpga_faults::FaultPlan::none())
    }

    /// Like [`ReferenceNic::with_fast_path`], with the fault plane spliced
    /// in executing `plan` (see [`Chassis::with_faults`]); the DMA engine
    /// is gated by the plan's stall/drop windows. An inert plan yields a
    /// NIC bit-for-bit identical to [`ReferenceNic::with_fast_path`].
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        fast_path: bool,
        plan: netfpga_faults::FaultPlan,
    ) -> ReferenceNic {
        let map = AddressMap::new();
        let (mut chassis, io) = Chassis::with_faults(spec, nports, map, fast_path, plan);
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let w = chassis.bus_width();

        // RX path: ports -> arbiter -> stats -> DMA(c2h).
        let (arb_tx, arb_rx) = Stream::new(64, w);
        let arbiter = InputArbiter::new("input_arbiter", from_ports, arb_tx).with_burst(fast_path);
        let (stats_tx, stats_rx) = Stream::new(64, w);
        let (stats_stage, rx_stats) = StatsStage::new("rx_stats", arb_rx, stats_tx, nports);
        let stats_stage = stats_stage.with_burst(fast_path);

        // TX path: DMA(h2c) -> output queues -> ports.
        let (h2c_tx, h2c_rx) = Stream::new(64, w);
        let oq = OutputQueues::new(
            "output_queues",
            h2c_rx,
            to_ports,
            QueueConfig::default(),
            || Box::new(Fifo),
        )
        .with_burst(fast_path);

        oq.register_stats(&chassis.telemetry, "oq");
        oq.register_depth_gauges(&chassis.telemetry, "");
        chassis.add_module(arbiter);
        chassis.add_module(stats_stage);
        chassis.add_module(oq);
        chassis.attach_dma(h2c_tx, stats_rx);

        // Registers: RX statistics at STATS_BASE.
        chassis.map.mount(
            "rx_stats",
            STATS_BASE,
            0x100,
            netfpga_core::regs::shared(StatsRegisters::new(rx_stats.clone())),
        );
        rx_stats.register_stats(&chassis.telemetry, "rx_stats");
        chassis.attach_mmio();

        ReferenceNic { chassis, rx_stats }
    }

    /// Approximate FPGA cost of this design (experiment E7).
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::INPUT_ARBITER
            + blocks::NIC_LOOKUP
            + blocks::STATS_STAGE
            + blocks::OUTPUT_QUEUES_PER_PORT.times(nports)
    }

    /// The blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "pcie_dma",
            "reg_interconnect",
            "input_arbiter",
            "nic_lookup",
            "stats_stage",
            "output_queues",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::time::Time;
    use netfpga_packet::PacketBuilder;

    fn nic() -> ReferenceNic {
        ReferenceNic::new(&BoardSpec::sume(), 4)
    }

    fn frame(tag: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(
                netfpga_packet::EthernetAddress::new(2, 0, 0, 0, 0, tag),
                netfpga_packet::EthernetAddress::new(2, 0, 0, 0, 0, 0xff),
            )
            .raw(netfpga_packet::EtherType::Ipv4, &[tag; 46])
            .build()
    }

    #[test]
    fn rx_frames_reach_host_with_port() {
        let mut nic = nic();
        nic.chassis.send(1, frame(0x11));
        nic.chassis.send(3, frame(0x33));
        nic.chassis.run_for(Time::from_us(10));
        let dma = nic.chassis.dma.clone().unwrap();
        let mut got = Vec::new();
        while let Some((pkt, meta)) = dma.recv() {
            got.push((meta.src_port, pkt));
        }
        got.sort_by_key(|(p, _)| *p);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1, frame(0x11));
        assert_eq!(got[1].0, 3);
        assert_eq!(nic.rx_stats.total_packets.get(), 2);
    }

    #[test]
    fn host_frames_exit_requested_port() {
        let mut nic = nic();
        let dma = nic.chassis.dma.clone().unwrap();
        let meta = netfpga_core::stream::Meta {
            dst_ports: netfpga_core::stream::PortMask::single(2),
            ..Default::default()
        };
        assert!(dma.send_with_meta(frame(0x77), meta).is_ok());
        nic.chassis.run_for(Time::from_us(10));
        assert_eq!(nic.chassis.recv(2), vec![frame(0x77)]);
        assert!(nic.chassis.recv(0).is_empty());
    }

    #[test]
    fn bidirectional_traffic() {
        let mut nic = nic();
        let dma = nic.chassis.dma.clone().unwrap();
        for i in 0..10u8 {
            nic.chassis.send(0, frame(i));
            let meta = netfpga_core::stream::Meta {
                dst_ports: netfpga_core::stream::PortMask::single(1),
                ..Default::default()
            };
            assert!(dma.send_with_meta(frame(100 + i), meta).is_ok());
        }
        nic.chassis.run_for(Time::from_us(50));
        let mut host_rx = 0;
        while dma.recv().is_some() {
            host_rx += 1;
        }
        assert_eq!(host_rx, 10);
        assert_eq!(nic.chassis.recv(1).len(), 10);
    }

    #[test]
    fn resource_cost_fits_sume() {
        let cost = ReferenceNic::resource_cost(4);
        assert!(cost.fits(&BoardSpec::sume().resources));
        assert!(!ReferenceNic::block_names().is_empty());
    }
}
