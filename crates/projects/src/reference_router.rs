//! The reference IPv4 router project.
//!
//! Pipeline: `rx MACs + CPU(DMA) → input arbiter → router lookup → output
//! queues → tx MACs + CPU(DMA)`. The lookup stage does what the RTL core
//! does: validate the IPv4 header, look up the destination in the LPM
//! table, resolve the next hop MAC in the ARP table, rewrite addresses,
//! decrement TTL with an incremental checksum update — and push anything
//! it cannot handle (ARP, packets for the router, TTL expiry, table
//! misses) up the **exception path** to the CPU, where the management
//! software (in `netfpga-host`) deals with it. That hardware/software
//! split is the signature of the design.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::{shared, AddressMap, RegisterSpace};
use netfpga_core::resources::ResourceCost;
use netfpga_core::stream::{Meta, PortMask, Stream};
use netfpga_core::time::Time;
use netfpga_datapath::blocks;
use netfpga_datapath::lpm::{LpmTable, RouteEntry};
use netfpga_datapath::queues::{OutputQueues, QueueConfig};
use netfpga_datapath::sched::Scheduler;
use netfpga_datapath::stage::{PacketLogic, StageAction};
use netfpga_datapath::{InputArbiter, PacketStage, ParsedHeaders};
use netfpga_packet::ethernet::EthernetFrame;
use netfpga_packet::ipv4::Ipv4Packet;
use netfpga_packet::{EthernetAddress, Ipv4Address, Ipv4Cidr};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Exception reasons carried in `meta.flags` on packets sent to the CPU.
pub mod exception {
    /// Not an IPv4 packet (ARP, unknown EtherType).
    pub const NON_IP: u16 = 1;
    /// Destined to one of the router's own addresses.
    pub const LOCAL: u16 = 2;
    /// TTL was 0 or 1 (software generates ICMP time-exceeded).
    pub const TTL_EXPIRED: u16 = 3;
    /// No LPM route (software generates ICMP net-unreachable).
    pub const NO_ROUTE: u16 = 4;
    /// Next hop has no ARP entry (software performs resolution).
    pub const ARP_MISS: u16 = 5;
}

/// Register base of the router control block.
pub const ROUTER_BASE: u32 = 0x2000;

/// Pipeline latency of the lookup stage (parse + trie walk + rewrite).
const LOOKUP_LATENCY: u64 = 16;

/// The router's shared tables, visible to the datapath, the register block
/// and host software helpers.
#[derive(Debug, Default)]
pub struct RouterTables {
    /// The LPM route table.
    pub lpm: LpmTable,
    /// ARP cache: next-hop IP to MAC.
    pub arp: BTreeMap<Ipv4Address, EthernetAddress>,
    /// Addresses owned by the router (one per interface, typically).
    pub local_ips: Vec<Ipv4Address>,
    /// Per-port source MAC addresses.
    pub port_macs: Vec<EthernetAddress>,
}

/// Datapath counters of the lookup stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Packets forwarded in hardware.
    pub forwarded: u64,
    /// Packets punted to the CPU, by any reason.
    pub to_cpu: u64,
    /// Packets dropped (bad checksum / malformed).
    pub dropped: u64,
}

struct RouterLookup {
    tables: Rc<RefCell<RouterTables>>,
    counters: Rc<RefCell<RouterCounters>>,
    cpu_port: u8,
}

impl RouterLookup {
    fn punt(&self, meta: &mut Meta, reason: u16) -> StageAction {
        meta.dst_ports = PortMask::single(self.cpu_port);
        meta.flags = reason;
        self.counters.borrow_mut().to_cpu += 1;
        StageAction::Forward
    }
}

impl PacketLogic for RouterLookup {
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, _now: Time) -> StageAction {
        // Packets injected by the CPU carry their destination already and
        // bypass routing (the management software routed them itself).
        if meta.src_port == self.cpu_port {
            if meta.dst_ports.is_empty() {
                self.counters.borrow_mut().dropped += 1;
                return StageAction::Drop;
            }
            self.counters.borrow_mut().forwarded += 1;
            return StageAction::Forward;
        }

        let headers = ParsedHeaders::parse(packet);
        let Some(ip) = headers.ipv4 else {
            return self.punt(meta, exception::NON_IP);
        };
        if !ip.checksum_ok {
            self.counters.borrow_mut().dropped += 1;
            return StageAction::Drop;
        }
        let tables = self.tables.borrow();
        if tables.local_ips.contains(&ip.dst) {
            drop(tables);
            return self.punt(meta, exception::LOCAL);
        }
        if ip.ttl <= 1 {
            drop(tables);
            return self.punt(meta, exception::TTL_EXPIRED);
        }
        let Some((next_hop, out_port)) = tables.lpm.next_hop(ip.dst) else {
            drop(tables);
            return self.punt(meta, exception::NO_ROUTE);
        };
        let Some(&next_mac) = tables.arp.get(&next_hop) else {
            drop(tables);
            return self.punt(meta, exception::ARP_MISS);
        };
        let src_mac = tables
            .port_macs
            .get(usize::from(out_port))
            .copied()
            .unwrap_or_default();
        drop(tables);

        // Rewrite: MAC addresses, TTL, checksum (incremental, like RTL).
        // `make_mut` triggers copy-on-write only if the buffer is shared
        // (e.g. a mirror holds a reference); the common case edits in place.
        {
            let data = packet.make_mut();
            let mut eth = EthernetFrame::new_unchecked(&mut data[..]);
            eth.set_dst_addr(next_mac);
            eth.set_src_addr(src_mac);
            let off = eth.header_len();
            let mut ipv4 = Ipv4Packet::new_unchecked(&mut data[off..]);
            ipv4.decrement_ttl();
        }
        meta.dst_ports = PortMask::single(out_port);
        meta.flags = 0;
        self.counters.borrow_mut().forwarded += 1;
        StageAction::Forward
    }
}

/// Command codes of the router register block.
mod cmd {
    pub const ADD_ROUTE: u32 = 1;
    pub const DEL_ROUTE: u32 = 2;
    pub const ADD_ARP: u32 = 3;
    pub const DEL_ARP: u32 = 4;
    pub const ADD_LOCAL_IP: u32 = 5;
    pub const SET_PORT_MAC: u32 = 6;
    pub const CLEAR_TABLES: u32 = 7;
}

/// The router's register block: a staging-register + command protocol for
/// table management (word offsets):
///
/// | word | register |
/// |------|----------|
/// | 0 | command (write executes) |
/// | 1 | staged IPv4 address |
/// | 2 | staged prefix length |
/// | 3 | staged next hop |
/// | 4 | staged port |
/// | 5 | staged MAC high 16 bits |
/// | 6 | staged MAC low 32 bits |
/// | 16..18 | counters: forwarded, to_cpu, dropped (RO) |
/// | 19..20 | table sizes: routes, ARP entries (RO) |
pub struct RouterRegisters {
    tables: Rc<RefCell<RouterTables>>,
    counters: Rc<RefCell<RouterCounters>>,
    stage: [u32; 8],
}

impl RouterRegisters {
    fn staged_ip(&self) -> Ipv4Address {
        Ipv4Address::from_u32(self.stage[1])
    }

    fn staged_mac(&self) -> EthernetAddress {
        EthernetAddress::from_u64((u64::from(self.stage[5]) << 32) | u64::from(self.stage[6]))
    }

    fn execute(&mut self, command: u32) {
        let mut t = self.tables.borrow_mut();
        match command {
            cmd::ADD_ROUTE => {
                let prefix = Ipv4Cidr::new(self.staged_ip(), (self.stage[2] & 63).min(32) as u8);
                t.lpm.insert(
                    prefix,
                    RouteEntry {
                        next_hop: Ipv4Address::from_u32(self.stage[3]),
                        port: self.stage[4] as u8,
                    },
                );
            }
            cmd::DEL_ROUTE => {
                let prefix = Ipv4Cidr::new(self.staged_ip(), (self.stage[2] & 63).min(32) as u8);
                t.lpm.remove(prefix);
            }
            cmd::ADD_ARP => {
                let ip = self.staged_ip();
                let mac = self.staged_mac();
                t.arp.insert(ip, mac);
            }
            cmd::DEL_ARP => {
                let ip = self.staged_ip();
                t.arp.remove(&ip);
            }
            cmd::ADD_LOCAL_IP => {
                let ip = self.staged_ip();
                if !t.local_ips.contains(&ip) {
                    t.local_ips.push(ip);
                }
            }
            cmd::SET_PORT_MAC => {
                let port = self.stage[4] as usize;
                let mac = self.staged_mac();
                if t.port_macs.len() <= port {
                    t.port_macs.resize(port + 1, EthernetAddress::default());
                }
                t.port_macs[port] = mac;
            }
            cmd::CLEAR_TABLES => {
                t.lpm.clear();
                t.arp.clear();
                t.local_ips.clear();
            }
            _ => {}
        }
    }
}

impl RegisterSpace for RouterRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        let word = offset / 4;
        match word {
            0..=7 => self.stage[word as usize],
            16 => self.counters.borrow().forwarded as u32,
            17 => self.counters.borrow().to_cpu as u32,
            18 => self.counters.borrow().dropped as u32,
            19 => self.tables.borrow().lpm.len() as u32,
            20 => self.tables.borrow().arp.len() as u32,
            _ => netfpga_core::regs::UNMAPPED_READ,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        let word = offset / 4;
        match word {
            0 => self.execute(value),
            1..=7 => self.stage[word as usize] = value,
            _ => {}
        }
    }
}

/// The assembled reference router.
pub struct ReferenceRouter {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// Shared tables (host helpers and tests edit them via registers, but
    /// direct inspection is handy in tests).
    pub tables: Rc<RefCell<RouterTables>>,
    /// Lookup counters.
    pub counters: Rc<RefCell<RouterCounters>>,
    /// The CPU exception port index (= number of Ethernet ports).
    pub cpu_port: u8,
}

impl ReferenceRouter {
    /// Build the router on `spec` with `nports` ports and the default FIFO
    /// output scheduler.
    pub fn new(spec: &BoardSpec, nports: usize) -> ReferenceRouter {
        Self::with_scheduler(spec, nports, QueueConfig::default, || {
            Box::new(netfpga_datapath::sched::Fifo)
        })
    }

    /// Build with a custom output-queue configuration and scheduler — the
    /// §3 "add a new scheduling module to the existing reference router"
    /// extension point, used by the E4 ablation.
    pub fn with_scheduler(
        spec: &BoardSpec,
        nports: usize,
        make_config: impl FnOnce() -> QueueConfig,
        make_scheduler: impl FnMut() -> Box<dyn Scheduler>,
    ) -> ReferenceRouter {
        Self::with_faults(
            spec,
            nports,
            make_config,
            make_scheduler,
            netfpga_faults::FaultPlan::none(),
        )
    }

    /// Like [`ReferenceRouter::with_scheduler`], with the fault plane
    /// spliced in executing `plan` (see [`Chassis::with_faults`]); the DMA
    /// engine is gated by the plan's stall/drop windows. An inert plan
    /// yields a router bit-for-bit identical to
    /// [`ReferenceRouter::with_scheduler`].
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        make_config: impl FnOnce() -> QueueConfig,
        make_scheduler: impl FnMut() -> Box<dyn Scheduler>,
        plan: netfpga_faults::FaultPlan,
    ) -> ReferenceRouter {
        let (mut chassis, io) = Chassis::with_faults(spec, nports, AddressMap::new(), false, plan);
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let w = chassis.bus_width();
        let cpu_port = nports as u8;

        let tables = Rc::new(RefCell::new(RouterTables::default()));
        let counters = Rc::new(RefCell::new(RouterCounters::default()));

        // Inputs: Ethernet ports plus the CPU (DMA h2c) stream.
        let (h2c_tx, h2c_rx) = Stream::new(64, w);
        let mut inputs = from_ports;
        inputs.push(h2c_rx);

        let (arb_tx, arb_rx) = Stream::new(64, w);
        let arbiter = InputArbiter::new("input_arbiter", inputs, arb_tx);
        let (lookup_tx, lookup_rx) = Stream::new(64, w);
        let lookup = PacketStage::new(
            "router_lookup",
            arb_rx,
            lookup_tx,
            LOOKUP_LATENCY,
            RouterLookup {
                tables: tables.clone(),
                counters: counters.clone(),
                cpu_port,
            },
        );

        // Outputs: Ethernet ports plus the CPU (DMA c2h) stream.
        let (c2h_tx, c2h_rx) = Stream::new(64, w);
        let mut outputs = to_ports;
        outputs.push(c2h_tx);
        let oq = OutputQueues::new(
            "output_queues",
            lookup_rx,
            outputs,
            make_config(),
            make_scheduler,
        );

        lookup.register_stats(&chassis.telemetry, "pipeline.lookup");
        oq.register_stats(&chassis.telemetry, "oq");
        oq.register_depth_gauges(&chassis.telemetry, "");
        {
            type Field = fn(&RouterCounters) -> u64;
            let fields: [(&str, Field); 3] = [
                ("forwarded", |c| c.forwarded),
                ("to_cpu", |c| c.to_cpu),
                ("dropped", |c| c.dropped),
            ];
            for (name, field) in fields {
                let counters = counters.clone();
                chassis
                    .telemetry
                    .gauge(&format!("router.{name}"), move || field(&counters.borrow()));
            }
        }
        chassis.add_module(arbiter);
        chassis.add_module(lookup);
        chassis.add_module(oq);
        chassis.attach_dma(h2c_tx, c2h_rx);

        chassis.map.mount(
            "router",
            ROUTER_BASE,
            0x100,
            shared(RouterRegisters {
                tables: tables.clone(),
                counters: counters.clone(),
                stage: [0; 8],
            }),
        );
        chassis.attach_mmio();

        ReferenceRouter {
            chassis,
            tables,
            counters,
            cpu_port,
        }
    }

    /// Approximate FPGA cost (experiment E7).
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::INPUT_ARBITER
            + blocks::ROUTER_LOOKUP
            + blocks::OUTPUT_QUEUES_PER_PORT.times(nports + 1)
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "pcie_dma",
            "reg_interconnect",
            "input_arbiter",
            "router_lookup",
            "output_queues",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::PacketBuilder;

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn ip(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    /// A two-interface router: 10.0.0.0/24 on port 0, 10.0.1.0/24 on
    /// port 1, with ARP entries for one host on each side.
    fn router() -> ReferenceRouter {
        let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
        {
            let mut t = r.tables.borrow_mut();
            t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
            t.local_ips = vec![ip("10.0.0.1"), ip("10.0.1.1")];
            t.lpm.insert(
                "10.0.0.0/24".parse().unwrap(),
                RouteEntry {
                    next_hop: Ipv4Address::UNSPECIFIED,
                    port: 0,
                },
            );
            t.lpm.insert(
                "10.0.1.0/24".parse().unwrap(),
                RouteEntry {
                    next_hop: Ipv4Address::UNSPECIFIED,
                    port: 1,
                },
            );
            t.arp.insert(ip("10.0.0.2"), mac(0xa2));
            t.arp.insert(ip("10.0.1.2"), mac(0xb2));
        }
        r
    }

    fn ip_frame(src_ip: &str, dst_ip: &str, ttl: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(0xa2), mac(0xe0)) // host A -> router port 0 MAC
            .ipv4(ip(src_ip), ip(dst_ip))
            .ttl(ttl)
            .udp(1000, 2000, b"payload")
            .build()
    }

    #[test]
    fn forwards_between_subnets_with_rewrite() {
        let mut r = router();
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.1.2", 64));
        r.chassis.run_for(Time::from_us(10));
        let out = r.chassis.recv(1);
        assert_eq!(out.len(), 1, "forwarded out port 1");
        let h = ParsedHeaders::parse(&out[0]);
        assert_eq!(h.eth_src, mac(0xe1), "source MAC = egress port MAC");
        assert_eq!(h.eth_dst, mac(0xb2), "dest MAC = next hop");
        let ipv4 = h.ipv4.unwrap();
        assert_eq!(ipv4.ttl, 63, "TTL decremented");
        assert!(ipv4.checksum_ok, "incremental checksum update is valid");
        assert_eq!(r.counters.borrow().forwarded, 1);
    }

    #[test]
    fn ttl_expiry_goes_to_cpu() {
        let mut r = router();
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.1.2", 1));
        r.chassis.run_for(Time::from_us(10));
        assert!(r.chassis.recv(1).is_empty(), "not forwarded");
        let dma = r.chassis.dma.clone().unwrap();
        let (pkt, meta) = dma.recv().expect("exception delivered");
        assert_eq!(meta.flags, exception::TTL_EXPIRED);
        assert_eq!(meta.src_port, 0, "ingress preserved for ICMP source");
        let h = ParsedHeaders::parse(&pkt);
        assert_eq!(h.ipv4.unwrap().ttl, 1, "packet not modified");
    }

    #[test]
    fn no_route_and_arp_miss_punt() {
        let mut r = router();
        r.chassis.send(0, ip_frame("10.0.0.2", "99.9.9.9", 64));
        r.chassis.run_for(Time::from_us(10));
        let dma = r.chassis.dma.clone().unwrap();
        let (_, meta) = dma.recv().expect("no-route exception");
        assert_eq!(meta.flags, exception::NO_ROUTE);

        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.1.99", 64));
        r.chassis.run_for(Time::from_us(10));
        let (_, meta) = dma.recv().expect("arp-miss exception");
        assert_eq!(meta.flags, exception::ARP_MISS);
    }

    #[test]
    fn local_and_arp_packets_to_cpu() {
        let mut r = router();
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.0.1", 64));
        r.chassis.run_for(Time::from_us(10));
        let dma = r.chassis.dma.clone().unwrap();
        let (_, meta) = dma.recv().expect("local exception");
        assert_eq!(meta.flags, exception::LOCAL);

        let arp = PacketBuilder::arp_request(mac(0xa2), ip("10.0.0.2"), ip("10.0.0.1"));
        r.chassis.send(0, arp);
        r.chassis.run_for(Time::from_us(10));
        let (_, meta) = dma.recv().expect("ARP punted");
        assert_eq!(meta.flags, exception::NON_IP);
    }

    #[test]
    fn bad_checksum_dropped_silently() {
        let mut r = router();
        let mut frame = ip_frame("10.0.0.2", "10.0.1.2", 64);
        frame[24] ^= 0xff; // corrupt the IPv4 header checksum field
        r.chassis.send(0, frame);
        r.chassis.run_for(Time::from_us(10));
        assert!(r.chassis.recv(1).is_empty());
        let dma = r.chassis.dma.clone().unwrap();
        assert!(dma.recv().is_none());
        assert_eq!(r.counters.borrow().dropped, 1);
    }

    #[test]
    fn cpu_injected_packets_bypass_routing() {
        let mut r = router();
        let dma = r.chassis.dma.clone().unwrap();
        let frame = PacketBuilder::arp_request(mac(0xe0), ip("10.0.0.1"), ip("10.0.0.9"));
        let meta = Meta {
            src_port: r.cpu_port,
            dst_ports: PortMask::single(0),
            ..Default::default()
        };
        assert!(dma.send_with_meta(frame.clone(), meta).is_ok());
        r.chassis.run_for(Time::from_us(10));
        assert_eq!(r.chassis.recv(0), vec![frame]);
    }

    #[test]
    fn table_management_via_registers() {
        let mut r = ReferenceRouter::new(&BoardSpec::sume(), 4);
        let base = ROUTER_BASE;
        // ADD_ROUTE 10.0.1.0/24 -> port 1, direct.
        r.chassis
            .write32(base + 4, u32::from_be_bytes([10, 0, 1, 0]));
        r.chassis.write32(base + 8, 24);
        r.chassis.write32(base + 12, 0);
        r.chassis.write32(base + 16, 1);
        r.chassis.write32(base, 1);
        assert_eq!(r.chassis.read32(base + 19 * 4), 1, "route count");
        // ADD_ARP 10.0.1.2 -> 02:..:b2
        r.chassis
            .write32(base + 4, u32::from_be_bytes([10, 0, 1, 2]));
        let m = mac(0xb2).to_u64();
        r.chassis.write32(base + 20, (m >> 32) as u32);
        r.chassis.write32(base + 24, m as u32);
        r.chassis.write32(base, 3);
        assert_eq!(r.chassis.read32(base + 20 * 4), 1, "arp count");
        assert_eq!(r.tables.borrow().arp.get(&ip("10.0.1.2")), Some(&mac(0xb2)));
        // SET_PORT_MAC port 1.
        r.chassis.write32(base + 16, 1);
        let pm = mac(0xe1).to_u64();
        r.chassis.write32(base + 20, (pm >> 32) as u32);
        r.chassis.write32(base + 24, pm as u32);
        r.chassis.write32(base, 6);
        assert_eq!(r.tables.borrow().port_macs[1], mac(0xe1));
        // Now hardware forwarding works end-to-end.
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.1.2", 64));
        r.chassis.run_for(Time::from_us(10));
        assert_eq!(r.chassis.recv(1).len(), 1);
        // CLEAR_TABLES removes everything.
        r.chassis.write32(base, 7);
        assert_eq!(r.chassis.read32(base + 19 * 4), 0);
        assert_eq!(r.chassis.read32(base + 20 * 4), 0);
    }

    #[test]
    fn counters_via_registers() {
        let mut r = router();
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.1.2", 64));
        r.chassis.send(0, ip_frame("10.0.0.2", "10.0.0.1", 64));
        r.chassis.run_for(Time::from_us(20));
        assert_eq!(r.chassis.read32(ROUTER_BASE + 16 * 4), 1, "forwarded");
        assert_eq!(r.chassis.read32(ROUTER_BASE + 17 * 4), 1, "to_cpu");
    }

    #[test]
    fn resource_cost_largest_of_reference_designs() {
        let router = ReferenceRouter::resource_cost(4);
        assert!(router.fits(&BoardSpec::sume().resources));
        assert!(router.luts > crate::reference_switch::ReferenceSwitch::resource_cost(4).luts);
    }
}
