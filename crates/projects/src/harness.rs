//! The chassis: a simulated board-in-a-testbed.
//!
//! A [`Chassis`] owns the simulator and the board edge — Ethernet MACs on
//! every front-panel port, and optionally a DMA engine and MMIO bridge for
//! the host side. Projects wire their datapath between the edge streams
//! ([`ChassisIo`]), exactly as a real project instantiates its pipeline
//! between the platform-provided MAC wrappers and the PCIe core.
//!
//! The tester (nftest harness, experiments) interacts only at the edges:
//! frames onto port wires (paced at line rate, as a peer device would
//! send), frames off port wires, register reads/writes through the MMIO
//! model, and packets through the DMA rings.

use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::AddressMap;
use netfpga_core::sim::{ClockId, Module, Simulator};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{Stream, StreamRx, StreamTx};
use netfpga_core::telemetry::{
    EventRing, StatBlock, StatRegistry, EVENTS_BASE, EVENTS_SIZE, TELEMETRY_BASE, TELEMETRY_SIZE,
};
use netfpga_core::time::{BitRate, Time};
use netfpga_faults::{
    FaultHandle, FaultInjector, FaultPlan, FaultRegisters, ProgressProbe, Watchdog, WatchdogConfig,
    FAULTS_BASE,
};
use netfpga_pcie::{DmaEngine, DmaHandle, MmioBridge, MmioPort, PcieConfig};
use netfpga_phy::mac::{wire_bytes, EthMacRx, EthMacTx, SharedMacStats, WireFrame};
use netfpga_phy::{LinkState, PcsHandle, PcsPort, Wire};
use std::rc::Rc;

/// Depth (in words) of the edge streams between MACs and the datapath.
const EDGE_FIFO_WORDS: usize = 64;

struct TesterPort {
    to_board: Wire,
    from_board: Wire,
    rate: BitRate,
    next_free: Time,
}

/// The project-facing edge streams created by [`Chassis::new`].
pub struct ChassisIo {
    /// Per-port word streams arriving from the RX MACs.
    pub from_ports: Vec<StreamRx>,
    /// Per-port word streams feeding the TX MACs.
    pub to_ports: Vec<StreamTx>,
}

/// A simulated board with its tester-side attachments.
pub struct Chassis {
    /// The simulator owning every module.
    pub sim: Simulator,
    /// The core datapath clock.
    pub clk: ClockId,
    /// Host DMA handle, when a DMA engine is attached.
    pub dma: Option<DmaHandle>,
    /// Host MMIO port, when a bridge is attached.
    pub mmio: Option<MmioPort>,
    /// Fault-plane handle, when the chassis was built with a non-inert
    /// [`FaultPlan`] (see [`Chassis::with_faults`]).
    pub faults: Option<FaultHandle>,
    /// The board's register map (empty until a project mounts blocks).
    pub map: Rc<AddressMap>,
    /// The unified telemetry plane. The chassis registers its own stats
    /// (per-port MACs under `port{i}.mac.*`, DMA under `dma.*`, fault
    /// counters under `faults.*`); projects add theirs at build time.
    /// [`Chassis::attach_mmio`] mounts the whole tree as a [`StatBlock`]
    /// at [`TELEMETRY_BASE`].
    pub telemetry: StatRegistry,
    /// Link/fault event ring, mounted at [`EVENTS_BASE`] by
    /// [`Chassis::attach_mmio`]. Fed by the fault plane when one is
    /// spliced; empty otherwise.
    pub events: EventRing,
    /// Per-port PCS retrain state machines, present when the fault plan
    /// carried a [`RecoveryPolicy`](netfpga_faults::RecoveryPolicy).
    pcs: Vec<PcsHandle>,
    ports: Vec<TesterPort>,
    rx_stats: Vec<SharedMacStats>,
    tx_stats: Vec<SharedMacStats>,
    bus_width: usize,
    pcie: PcieConfig,
    /// The DMA engine's progress probe, stashed by [`Chassis::attach_dma`]
    /// for the watchdog to consume.
    dma_probe: Option<ProgressProbe>,
    /// The fault plan's recovery policy (watchdog knobs live here).
    recovery: Option<netfpga_faults::RecoveryPolicy>,
    /// The watchdog's bite counter, when one is attached.
    watchdog_bites: Option<Counter>,
}

impl Chassis {
    /// Build a chassis for `nports` Ethernet ports of `spec`'s board: MACs
    /// at each port, core clock and bus width from the spec.
    pub fn new(spec: &BoardSpec, nports: usize, map: AddressMap) -> (Chassis, ChassisIo) {
        Chassis::with_fast_path(spec, nports, map, false)
    }

    /// Like [`Chassis::new`], with the kernel fast path optionally enabled:
    /// the edge MACs run in burst mode (whole frames per tick instead of
    /// one word per cycle). Frame contents, ordering and — under sustained
    /// load — wire pacing are unchanged; word-level timing inside the
    /// pipeline is not cycle-exact. Projects built on a fast-path chassis
    /// should enable burst mode on their own stages too.
    pub fn with_fast_path(
        spec: &BoardSpec,
        nports: usize,
        map: AddressMap,
        fast_path: bool,
    ) -> (Chassis, ChassisIo) {
        Chassis::with_faults(spec, nports, map, fast_path, FaultPlan::none())
    }

    /// Like [`Chassis::with_fast_path`], with the fault plane spliced in:
    /// a [`FaultInjector`] executing `plan` is interposed between the
    /// tester and the port MACs, its counters are mounted at
    /// [`FAULTS_BASE`], and any DMA engine attached later gets the plan's
    /// fault gate. With an inert plan ([`FaultPlan::none`]) *nothing* is
    /// spliced and the chassis is bit-for-bit identical to
    /// [`Chassis::with_fast_path`].
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        map: AddressMap,
        fast_path: bool,
        plan: FaultPlan,
    ) -> (Chassis, ChassisIo) {
        assert!((1..=16).contains(&nports), "1..=16 ports");
        let telemetry = StatRegistry::new();
        let events = EventRing::new(64);
        // The ring drops on overflow by design; the drop count is a stat,
        // so a consumer that fell behind can tell how much it missed.
        let drop_src = events.clone();
        telemetry.gauge("events.dropped", move || drop_src.dropped());
        // Packet-buffer pool health: allocator pressure (`allocs` should
        // flatline once the pool warms up), recycle hits, and the number of
        // copy-on-write materializations (shared buffers actually edited).
        telemetry.gauge("pool.allocs", || netfpga_core::pktbuf::pool_stats().allocs);
        telemetry.gauge("pool.recycled", || {
            netfpga_core::pktbuf::pool_stats().recycled
        });
        telemetry.gauge("pool.cow_copies", || {
            netfpga_core::pktbuf::pool_stats().cow_copies
        });
        let mut sim = Simulator::new();
        // Kernel self-observation: the fused dispatcher's own work
        // counters (edges executed, edges fast-forwarded, activity probes
        // served from cache, wake-forced re-queries), mounted beside the
        // datapath stats they pay for.
        let kstats = sim.kernel_stat_cells();
        telemetry.register_counter("kernel.steps", &kstats.steps);
        telemetry.register_counter("kernel.skips", &kstats.skips);
        telemetry.register_counter("kernel.probes_avoided", &kstats.probes_avoided);
        telemetry.register_counter("kernel.invalidations", &kstats.invalidations);
        let clk = sim.add_clock("core", spec.core_clock);
        let rate = spec
            .ports
            .iter()
            .find(|p| matches!(p.kind, netfpga_core::board::PortKind::Sfpp))
            .map(|p| {
                // Quote the post-encoding Ethernet rate (10.3125 G line ->
                // 10 G payload) rather than the raw lane rate, and bond
                // lanes into the port's aggregate rate.
                let lane = if p.lane_rate == BitRate::bps(10_312_500_000) {
                    BitRate::gbps(10)
                } else {
                    p.lane_rate
                };
                BitRate::bps(lane.as_bps() * u64::from(p.lanes))
            })
            .unwrap_or(BitRate::gbps(10));
        let mut injector = if plan.is_inert() {
            None
        } else {
            Some(FaultInjector::new("fault_injector", &plan))
        };
        let mut ports = Vec::new();
        let mut from_ports = Vec::new();
        let mut to_ports = Vec::new();
        let mut rx_stats = Vec::new();
        let mut tx_stats = Vec::new();
        for i in 0..nports {
            let to_board = Wire::new();
            let from_board = Wire::new();
            // With a live fault plane the injector owns the gap between
            // the tester wires and the MAC wires; without one the MACs sit
            // directly on the tester wires, exactly as before.
            let (mac_in, mac_out) = match &mut injector {
                Some((inj, _)) => {
                    let inner_in = Wire::new();
                    let inner_out = Wire::new();
                    inj.tap_port(
                        rate,
                        to_board.clone(),
                        inner_in.clone(),
                        inner_out.clone(),
                        from_board.clone(),
                    );
                    (inner_in, inner_out)
                }
                None => (to_board.clone(), from_board.clone()),
            };
            let (rx_tx, rx_rx) = Stream::new(EDGE_FIFO_WORDS, spec.bus_width);
            let (tx_tx, tx_rx) = Stream::new(EDGE_FIFO_WORDS, spec.bus_width);
            let (mac_rx, rstat) = EthMacRx::new(&format!("mac{i}_rx"), mac_in, rx_tx, i as u8);
            let (mac_tx, tstat) = EthMacTx::new(&format!("mac{i}_tx"), rate, tx_rx, mac_out);
            sim.add_module(clk, mac_rx.with_burst(fast_path));
            sim.add_module(clk, mac_tx.with_burst(fast_path));
            rstat.register_stats(&telemetry, &format!("port{i}.mac.rx"));
            tstat.register_stats(&telemetry, &format!("port{i}.mac.tx"));
            ports.push(TesterPort {
                to_board,
                from_board,
                rate,
                next_free: Time::ZERO,
            });
            from_ports.push(rx_rx);
            to_ports.push(tx_tx);
            rx_stats.push(rstat);
            tx_stats.push(tstat);
        }
        let mut pcs_handles: Vec<PcsHandle> = Vec::new();
        let faults = injector.map(|(mut inj, handle)| {
            inj.set_event_ring(events.clone());
            handle.counters().register_stats(&telemetry, "faults");
            handle.dma_gate().register_stats(&telemetry, "dma.fault");
            // The recovery plane: one PCS retrain state machine per port,
            // wired to the injector (which publishes raw signal into it and
            // gates forwarding on its reported state), plus a background
            // ECC scrubber when the policy calls for one. PCS modules tick
            // after the injector on the same clock, exactly as a hardware
            // PCS samples the medium of the previous cycle.
            let mut pcs_modules = Vec::new();
            if let Some(policy) = plan.recovery {
                for i in 0..nports {
                    let lanes = plan
                        .bonds
                        .iter()
                        .find(|(p, _)| usize::from(*p) == i)
                        .map(|(_, b)| b.lanes)
                        .unwrap_or(1);
                    let (mut port, ph) =
                        PcsPort::new(&format!("pcs{i}"), i as u8, lanes, policy.pcs_config());
                    port.set_event_ring(events.clone());
                    ph.counters()
                        .register_stats(&telemetry, &format!("port{i}.pcs"));
                    let state_src = ph.clone();
                    telemetry.gauge(&format!("port{i}.pcs.state"), move || {
                        state_src.state().code()
                    });
                    inj.attach_pcs(i, ph.clone());
                    pcs_handles.push(ph);
                    pcs_modules.push(port);
                }
            }
            sim.add_module(clk, inj);
            for port in pcs_modules {
                sim.add_module(clk, port);
            }
            if let Some(policy) = plan.recovery {
                if policy.scrub_words_per_cycle > 0 {
                    sim.add_module(
                        clk,
                        handle.scrubber("ecc_scrub", policy.scrub_words_per_cycle),
                    );
                }
            }
            map.mount(
                "faults",
                FAULTS_BASE,
                0x100,
                netfpga_core::regs::shared(FaultRegisters::new(handle.clone())),
            );
            handle
        });
        let pcie = PcieConfig {
            generation: spec.pcie.generation,
            lanes: spec.pcie.lanes,
            ..PcieConfig::gen3_x8()
        };
        let recovery = plan.recovery;
        (
            Chassis {
                sim,
                clk,
                dma: None,
                mmio: None,
                faults,
                map: Rc::new(map),
                telemetry,
                events,
                pcs: pcs_handles,
                ports,
                rx_stats,
                tx_stats,
                bus_width: spec.bus_width,
                pcie,
                dma_probe: None,
                recovery,
                watchdog_bites: None,
            },
            ChassisIo {
                from_ports,
                to_ports,
            },
        )
    }

    /// Number of Ethernet ports.
    pub fn nports(&self) -> usize {
        self.ports.len()
    }

    /// The datapath bus width in bytes.
    pub fn bus_width(&self) -> usize {
        self.bus_width
    }

    /// Register a project module on the core clock.
    pub fn add_module(&mut self, module: impl Module + 'static) {
        self.sim.add_module(self.clk, module);
    }

    /// Attach a DMA engine between the host and the given datapath streams
    /// (`to_card` feeds the datapath, `from_card` drains it). On a chassis
    /// whose fault plan carries a recovery policy, a hardware watchdog is
    /// wired to the engine's progress probe as well (see
    /// [`Chassis::attach_watchdog`]).
    pub fn attach_dma(&mut self, to_card: StreamTx, from_card: StreamRx) {
        let (mut engine, handle) = DmaEngine::new("dma", self.pcie, to_card, from_card, 256, 256);
        if let Some(faults) = &self.faults {
            engine = engine.with_fault_gate(faults.dma_gate());
        }
        handle.register_stats(&self.telemetry, "dma");
        self.dma_probe = Some(Box::new(engine.progress_probe()));
        self.sim.add_module(self.clk, engine);
        self.dma = Some(handle);
        if let Some(policy) = self.recovery {
            self.attach_watchdog(WatchdogConfig::from_policy(&policy));
        }
    }

    /// Attach the hardware watchdog: it monitors the DMA engine's progress
    /// probe (call after [`Chassis::attach_dma`]) against `config`'s
    /// deadline and, on a bite, publishes a
    /// [`WatchdogBite`](netfpga_core::telemetry::EventKind) to the event
    /// ring, waits the drain window, pulls the simulator's soft-reset
    /// line, and holds off before re-arming. Its bite counter is mounted
    /// at `watchdog.bites` and readable via [`Chassis::watchdog_bites`].
    pub fn attach_watchdog(&mut self, config: WatchdogConfig) {
        let mut wd = Watchdog::new("watchdog", config, self.sim.soft_reset_line());
        if let Some(probe) = self.dma_probe.take() {
            wd.add_probe("dma", probe);
        }
        wd.set_event_ring(self.events.clone());
        wd.register_stats(&self.telemetry, "watchdog");
        self.watchdog_bites = Some(wd.bites());
        self.sim.add_module(self.clk, wd);
    }

    /// Watchdog bites so far (0 when no watchdog is attached).
    pub fn watchdog_bites(&self) -> u64 {
        self.watchdog_bites.as_ref().map_or(0, Counter::get)
    }

    /// True when a hardware watchdog is attached.
    pub fn has_watchdog(&self) -> bool {
        self.watchdog_bites.is_some()
    }

    /// Attach the MMIO bridge onto the chassis register map, auto-mounting
    /// the telemetry plane first: every stat registered so far (chassis +
    /// project) becomes readable through the [`StatBlock`] at
    /// [`TELEMETRY_BASE`], and the event ring at [`EVENTS_BASE`]. Call
    /// after all project blocks are mounted and all stats registered —
    /// the stat block snapshots the registry's *name set* (not its
    /// values) when built.
    pub fn attach_mmio(&mut self) {
        if !self.telemetry.is_empty() {
            let block = StatBlock::from_registry(&self.telemetry, "");
            let size = (block.size_bytes() + 0xff) & !0xff;
            assert!(
                size <= TELEMETRY_SIZE,
                "telemetry block overflows its window: {size:#x} > {TELEMETRY_SIZE:#x}"
            );
            self.map.mount(
                "telemetry",
                TELEMETRY_BASE,
                size,
                netfpga_core::regs::shared(block),
            );
            self.map.mount(
                "events",
                EVENTS_BASE,
                EVENTS_SIZE,
                netfpga_core::regs::shared(self.events.registers()),
            );
        }
        let (bridge, port) = MmioBridge::new("mmio", self.pcie, self.map.clone());
        self.sim.add_module(self.clk, bridge);
        self.mmio = Some(port);
    }

    /// Send `frame` into `port` as a peer device would: serialized at the
    /// port's line rate after the previous tester frame on that port.
    pub fn send(&mut self, port: usize, frame: impl Into<PktBuf>) {
        let frame = frame.into();
        assert!(frame.len() >= 14, "runt frame");
        let p = &mut self.ports[port];
        let start = p.next_free.max(self.sim.now());
        let occupancy = p.rate.time_for_bytes(wire_bytes(frame.len() as u64));
        let ready_at = start + occupancy;
        p.next_free = ready_at;
        p.to_board.push(WireFrame::new(frame, ready_at));
    }

    /// Drain every frame the board has fully transmitted on `port`.
    pub fn recv(&mut self, port: usize) -> Vec<Vec<u8>> {
        self.recv_timed(port).into_iter().map(|(f, _)| f).collect()
    }

    /// Like [`Chassis::recv`], also returning each frame's wire-completion
    /// time (used for latency measurements in the experiments).
    pub fn recv_timed(&mut self, port: usize) -> Vec<(Vec<u8>, Time)> {
        let now = self.sim.now();
        let mut out = Vec::new();
        while let Some(f) = self.ports[port].from_board.take_ready(now) {
            out.push((f.data.to_vec(), f.ready_at));
        }
        out
    }

    /// Advance simulated time.
    pub fn run_for(&mut self, d: Time) {
        self.sim.run_for(d);
    }

    /// Run until `pred` is true (checked each edge) or `deadline` passes.
    /// Returns whether the predicate fired.
    pub fn run_while(&mut self, deadline: Time, pred: impl FnMut() -> bool) -> bool {
        self.sim.run_while(deadline, pred)
    }

    /// Read a register over MMIO, advancing the simulation until the
    /// completion returns. Panics if no MMIO bridge is attached.
    pub fn read32(&mut self, addr: u32) -> u32 {
        let port = self.mmio.clone().expect("MMIO not attached");
        port.post_read(addr, self.sim.now());
        let mut got = None;
        let deadline = self.sim.now() + Time::from_ms(1);
        let ok = self.sim.run_while(deadline, || {
            got = port.try_complete();
            got.is_none()
        });
        assert!(ok, "MMIO read timed out");
        got.expect("completion present")
    }

    /// Post a register write over MMIO and advance the simulation until it
    /// lands (posted writes are ordered; waiting keeps tests simple).
    pub fn write32(&mut self, addr: u32, value: u32) {
        let port = self.mmio.clone().expect("MMIO not attached");
        port.post_write(addr, value, self.sim.now());
        let deadline = self.sim.now() + Time::from_ms(1);
        let ok = self.sim.run_while(deadline, || port.outstanding() > 0);
        assert!(ok, "MMIO write timed out");
    }

    /// RX MAC statistics of a port.
    pub fn rx_mac_stats(&self, port: usize) -> netfpga_phy::MacStats {
        self.rx_stats[port].get()
    }

    /// TX MAC statistics of a port.
    pub fn tx_mac_stats(&self, port: usize) -> netfpga_phy::MacStats {
        self.tx_stats[port].get()
    }

    /// The line rate of a port (for line-rate math in experiments).
    pub fn port_rate(&self, port: usize) -> BitRate {
        self.ports[port].rate
    }

    /// PCS link state of a port, when the chassis carries a recovery plane
    /// ([`FaultPlan::with_recovery`]); `None` otherwise.
    pub fn link_state(&self, port: usize) -> Option<LinkState> {
        self.pcs.get(port).map(|p| p.state())
    }

    /// Handle onto a port's PCS (state, bond width, transition counters),
    /// when the chassis carries a recovery plane.
    pub fn pcs_handle(&self, port: usize) -> Option<PcsHandle> {
        self.pcs.get(port).cloned()
    }

    /// The raw wires of a port: `(to_board, from_board)`. Wires share
    /// state through `Rc`, so clones are live handles — used to splice
    /// link models (delay/loss emulated devices-under-test) between ports.
    pub fn port_wires(&self, port: usize) -> (Wire, Wire) {
        (
            self.ports[port].to_board.clone(),
            self.ports[port].from_board.clone(),
        )
    }

    /// Splice a [`Link`](netfpga_phy::Link) carrying frames from one wire
    /// to another (e.g. loop a port's output back to its input through an
    /// emulated device with delay and loss).
    pub fn add_link(&mut self, name: &str, from: Wire, to: Wire, config: netfpga_phy::LinkConfig) {
        let link = netfpga_phy::Link::new(name, from, to, config);
        self.sim.add_module(self.clk, link);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::sim::TickContext;

    /// A trivial "project": loop each port's RX stream back to its own TX.
    struct Loopback {
        rx: StreamRx,
        tx: StreamTx,
    }

    impl Module for Loopback {
        fn name(&self) -> &str {
            "loopback"
        }
        fn tick(&mut self, _ctx: &TickContext) {
            if self.tx.can_push() {
                if let Some(w) = self.rx.pop() {
                    self.tx.push(w);
                }
            }
        }
    }

    fn loopback_chassis() -> Chassis {
        let spec = BoardSpec::sume();
        let (mut chassis, io) = Chassis::new(&spec, 4, AddressMap::new());
        for (rx, tx) in io.from_ports.into_iter().zip(io.to_ports) {
            chassis.add_module(Loopback { rx, tx });
        }
        chassis
    }

    #[test]
    fn frames_loop_back_on_each_port() {
        let mut c = loopback_chassis();
        c.send(0, vec![0xaa; 100]);
        c.send(2, vec![0xbb; 200]);
        c.run_for(Time::from_us(10));
        assert_eq!(c.recv(0), vec![vec![0xaa; 100]]);
        assert_eq!(c.recv(2), vec![vec![0xbb; 200]]);
        assert!(c.recv(1).is_empty());
        assert_eq!(c.rx_mac_stats(0).frames, 1);
        assert_eq!(c.tx_mac_stats(0).frames, 1);
    }

    #[test]
    fn tester_send_is_paced_at_line_rate() {
        let mut c = loopback_chassis();
        // 100 minimum frames: at 10G they occupy 100 x 84 B of wire time.
        for _ in 0..100 {
            c.send(0, vec![0u8; 60]);
        }
        c.run_for(Time::from_us(100));
        let got = c.recv(0);
        assert_eq!(got.len(), 100);
        // Wire time for 100 x 84-byte slots at 10G = 6.72 us; the RX MAC
        // cannot have seen them faster than that.
        let stats = c.rx_mac_stats(0);
        assert_eq!(stats.frames, 100);
    }

    #[test]
    fn mmio_roundtrip_through_chassis() {
        let spec = BoardSpec::sume();
        let map = AddressMap::new();
        map.mount(
            "scratch",
            0x0,
            0x100,
            netfpga_core::regs::shared(netfpga_core::regs::RamRegisters::new(0x100)),
        );
        let (mut chassis, _io) = Chassis::new(&spec, 1, map);
        chassis.attach_mmio();
        chassis.write32(0x10, 0xfeed);
        assert_eq!(chassis.read32(0x10), 0xfeed);
    }

    #[test]
    #[should_panic(expected = "runt frame")]
    fn runt_send_rejected() {
        let mut c = loopback_chassis();
        c.send(0, vec![0u8; 8]);
    }
}
