//! The reference learning switch project.
//!
//! Pipeline: `rx MACs → input arbiter → learning lookup → output queues →
//! tx MACs`. The lookup stage wraps
//! [`netfpga_datapath::LearningSwitchCore`] in the standard
//! [`PacketStage`] shell. Statistics and the learning table are
//! exposed through register blocks.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::{pool_stats, PktBuf};
use netfpga_core::regs::{shared, AddressMap, RegisterSpace};
use netfpga_core::resources::ResourceCost;
use netfpga_core::stream::{Meta, Stream};
use netfpga_core::time::Time;
use netfpga_datapath::blocks;
use netfpga_datapath::pktstats::{StatsHandles, StatsRegisters, StatsStage};
use netfpga_datapath::queues::{OutputQueues, QueueConfig};
use netfpga_datapath::sched::Fifo;
use netfpga_datapath::stage::{PacketLogic, StageAction};
use netfpga_datapath::{InputArbiter, LearningSwitchCore, PacketStage};
use netfpga_flowmon::hist::register_quantile_gauges;
use netfpga_flowmon::{
    ExporterHandle, FlowExporter, FlowMonHandle, FlowTap, FlowmonConfig, FlowmonRegisters,
    LogLinearHistogram, FLOWMON_BASE, FLOWMON_SIZE,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Register base of the statistics block.
pub const STATS_BASE: u32 = 0x0000;
/// Register base of the lookup block (hit/flood/learned counters).
pub const LOOKUP_BASE: u32 = 0x1000;

/// Pipeline latency of the lookup stage in cycles (hash read + decision),
/// matching the handful of pipeline stages the RTL core uses.
const LOOKUP_LATENCY: u64 = 8;

struct SwitchLookup {
    core: Rc<RefCell<LearningSwitchCore>>,
}

impl PacketLogic for SwitchLookup {
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, now: Time) -> StageAction {
        let mask = self.core.borrow_mut().forward(packet, meta, now);
        if mask.is_empty() {
            // Destination is the ingress port only (hairpin): drop.
            return StageAction::Drop;
        }
        meta.dst_ports = mask;
        StageAction::Forward
    }

    fn reset(&mut self) {
        self.core.borrow_mut().flush();
    }
}

/// Register view of the lookup core: 0x0 hits, 0x4 floods, 0x8 learned,
/// 0xc learn failures. Any write flushes the table.
struct LookupRegisters {
    core: Rc<RefCell<LearningSwitchCore>>,
}

impl RegisterSpace for LookupRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        let s = self.core.borrow().stats();
        match offset / 4 {
            0 => s.hits as u32,
            1 => s.floods as u32,
            2 => s.learned as u32,
            3 => s.learn_failures as u32,
            _ => netfpga_core::regs::UNMAPPED_READ,
        }
    }

    fn write(&mut self, _offset: u32, _value: u32) {
        self.core.borrow_mut().flush();
    }
}

/// The assembled reference switch.
pub struct ReferenceSwitch {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// Shared handle to the learning core (tests inspect the table).
    pub core: Rc<RefCell<LearningSwitchCore>>,
    /// RX statistics handles.
    pub rx_stats: StatsHandles,
    /// Flow-monitor tap handle, when built with
    /// [`ReferenceSwitch::with_flowmon`].
    pub flowmon: Option<FlowMonHandle>,
    /// Streaming exporter handle (delta ring + Prometheus text), when
    /// built with [`ReferenceSwitch::with_flowmon`].
    pub exporter: Option<ExporterHandle>,
}

impl ReferenceSwitch {
    /// Build the switch on `spec` with `nports` ports, a learning table of
    /// `table_capacity` entries and the given aging interval.
    pub fn new(
        spec: &BoardSpec,
        nports: usize,
        table_capacity: usize,
        age_limit: Time,
    ) -> ReferenceSwitch {
        ReferenceSwitch::with_fast_path(spec, nports, table_capacity, age_limit, false)
    }

    /// Like [`ReferenceSwitch::new`], with the kernel fast path optionally
    /// enabled: every pipeline stage and edge MAC runs in burst mode
    /// (whole packets per tick). Forwarding behaviour — learning, flooding,
    /// drops, per-port delivery — is identical; only cycle-level pacing
    /// inside the pipeline is collapsed, so use the default build when
    /// cycle-exact latency matters and this one for long functional or
    /// throughput runs.
    pub fn with_fast_path(
        spec: &BoardSpec,
        nports: usize,
        table_capacity: usize,
        age_limit: Time,
        fast_path: bool,
    ) -> ReferenceSwitch {
        ReferenceSwitch::with_faults(
            spec,
            nports,
            table_capacity,
            age_limit,
            fast_path,
            netfpga_faults::FaultPlan::none(),
        )
    }

    /// Like [`ReferenceSwitch::with_fast_path`], with the fault plane
    /// spliced in executing `plan` (see [`Chassis::with_faults`]). An
    /// inert plan yields a switch bit-for-bit identical to
    /// [`ReferenceSwitch::with_fast_path`].
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        table_capacity: usize,
        age_limit: Time,
        fast_path: bool,
        plan: netfpga_faults::FaultPlan,
    ) -> ReferenceSwitch {
        ReferenceSwitch::build(
            spec,
            nports,
            table_capacity,
            age_limit,
            fast_path,
            plan,
            None,
        )
    }

    /// Like [`ReferenceSwitch::with_fast_path`], with the flow-monitoring
    /// plane mounted: a zero-copy [`FlowTap`] spliced between the lookup
    /// stage and the output queues, per-queue depth histograms sampled by
    /// a periodic [`FlowExporter`], and the self-describing flow-monitor
    /// MMIO block at [`FLOWMON_BASE`]. Forwarding behaviour is identical
    /// to a tap-less build; the tap only observes words in flight.
    pub fn with_flowmon(
        spec: &BoardSpec,
        nports: usize,
        table_capacity: usize,
        age_limit: Time,
        fast_path: bool,
        flowmon: FlowmonConfig,
    ) -> ReferenceSwitch {
        ReferenceSwitch::build(
            spec,
            nports,
            table_capacity,
            age_limit,
            fast_path,
            netfpga_faults::FaultPlan::none(),
            Some(flowmon),
        )
    }

    fn build(
        spec: &BoardSpec,
        nports: usize,
        table_capacity: usize,
        age_limit: Time,
        fast_path: bool,
        plan: netfpga_faults::FaultPlan,
        flowmon: Option<FlowmonConfig>,
    ) -> ReferenceSwitch {
        let (mut chassis, io) =
            Chassis::with_faults(spec, nports, AddressMap::new(), fast_path, plan);
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let w = chassis.bus_width();

        let core = Rc::new(RefCell::new(LearningSwitchCore::new(
            nports as u8,
            table_capacity,
            age_limit,
        )));

        let (arb_tx, arb_rx) = Stream::new(64, w);
        let arbiter = InputArbiter::new("input_arbiter", from_ports, arb_tx).with_burst(fast_path);
        let (stats_tx, stats_rx) = Stream::new(64, w);
        let (stats_stage, rx_stats) = StatsStage::new("rx_stats", arb_rx, stats_tx, nports);
        let stats_stage = stats_stage.with_burst(fast_path);
        let (lookup_tx, lookup_rx) = Stream::new(64, w);
        let lookup = PacketStage::new(
            "switch_lookup",
            stats_rx,
            lookup_tx,
            LOOKUP_LATENCY,
            SwitchLookup { core: core.clone() },
        )
        .with_burst(fast_path);

        // With flow monitoring on, the tap splices between the lookup
        // stage and the output queues; words flow through untouched
        // (refcount-bumped views), so the datapath is byte-identical.
        let (tap, oq_input) = match &flowmon {
            Some(cfg) => {
                let (tap_tx, tap_rx) = Stream::new(64, w);
                let tap = FlowTap::new(lookup_rx, tap_tx, cfg).with_burst(fast_path);
                (Some(tap), tap_rx)
            }
            None => (None, lookup_rx),
        };
        let oq = OutputQueues::new(
            "output_queues",
            oq_input,
            to_ports,
            QueueConfig::default(),
            || Box::new(Fifo),
        )
        .with_burst(fast_path);

        lookup.register_stats(&chassis.telemetry, "pipeline.lookup");
        oq.register_stats(&chassis.telemetry, "oq");
        oq.register_depth_gauges(&chassis.telemetry, "");

        let (mon, exporter_handle) = match (&flowmon, &tap) {
            (Some(cfg), Some(tap)) => {
                let mon = tap.handle();
                mon.register_stats(&chassis.telemetry, "flowmon");
                let mut exporter = FlowExporter::new(
                    chassis.telemetry.clone(),
                    cfg.sample_interval,
                    cfg.delta_capacity,
                );
                // Occupancy series: one histogram per port queue (class 0
                // under the default config) plus the pktbuf free list —
                // sampled at export instants, never per packet.
                for p in 0..nports {
                    let hist = LogLinearHistogram::shared(cfg.hist_sub_bits);
                    register_quantile_gauges(
                        &chassis.telemetry,
                        &format!("port{p}.q0.depth"),
                        &hist,
                    );
                    let cell = oq.depth_cell(p, 0);
                    exporter.add_series(hist, move || cell.get());
                }
                let pool_hist = LogLinearHistogram::shared(cfg.hist_sub_bits);
                register_quantile_gauges(&chassis.telemetry, "pool.occupancy", &pool_hist);
                exporter.add_series(pool_hist, || pool_stats().free);
                // The snapshot count is deliberately NOT a registry stat:
                // it moves on every sample, which would read as perpetual
                // activity to the exporter's own idle backoff (and push a
                // self-delta each interval). It stays visible through the
                // MMIO block (`+0x2C`) and the handle.
                let handle = exporter.handle();
                chassis.map.mount(
                    "flowmon",
                    FLOWMON_BASE,
                    FLOWMON_SIZE,
                    shared(FlowmonRegisters::new(mon.clone(), handle.clone())),
                );
                chassis.add_module(exporter);
                (Some(mon), Some(handle))
            }
            _ => (None, None),
        };

        chassis.add_module(arbiter);
        chassis.add_module(stats_stage);
        chassis.add_module(lookup);
        if let Some(tap) = tap {
            chassis.add_module(tap);
        }
        chassis.add_module(oq);

        chassis.map.mount(
            "rx_stats",
            STATS_BASE,
            0x100,
            shared(StatsRegisters::new(rx_stats.clone())),
        );
        chassis.map.mount(
            "switch_lookup",
            LOOKUP_BASE,
            0x100,
            shared(LookupRegisters { core: core.clone() }),
        );
        rx_stats.register_stats(&chassis.telemetry, "rx_stats");
        LearningSwitchCore::register_stats(&core, &chassis.telemetry, "lookup");
        chassis.attach_mmio();

        ReferenceSwitch {
            chassis,
            core,
            rx_stats,
            flowmon: mon,
            exporter: exporter_handle,
        }
    }

    /// Approximate FPGA cost (experiment E7).
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::INPUT_ARBITER
            + blocks::SWITCH_LOOKUP
            + blocks::STATS_STAGE
            + blocks::OUTPUT_QUEUES_PER_PORT.times(nports)
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "pcie_dma",
            "reg_interconnect",
            "input_arbiter",
            "switch_lookup",
            "stats_stage",
            "output_queues",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::{EthernetAddress, PacketBuilder};

    fn switch() -> ReferenceSwitch {
        ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100))
    }

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn frame(src: u8, dst: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .raw(netfpga_packet::EtherType::Ipv4, &[src; 50])
            .build()
    }

    #[test]
    fn unknown_destination_floods_all_but_ingress() {
        let mut sw = switch();
        sw.chassis.send(0, frame(1, 2));
        sw.chassis.run_for(Time::from_us(10));
        assert!(sw.chassis.recv(0).is_empty(), "no reflection");
        for p in 1..4 {
            assert_eq!(sw.chassis.recv(p).len(), 1, "flooded to port {p}");
        }
    }

    #[test]
    fn learning_converges_to_unicast() {
        let mut sw = switch();
        // Station A (mac 1) on port 0; station B (mac 2) on port 2.
        sw.chassis.send(0, frame(1, 2)); // flood, learn A@0
        sw.chassis.run_for(Time::from_us(10));
        for p in 0..4 {
            sw.chassis.recv(p);
        }
        sw.chassis.send(2, frame(2, 1)); // unicast to port 0, learn B@2
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.recv(0).len(), 1);
        assert!(sw.chassis.recv(1).is_empty());
        assert!(sw.chassis.recv(3).is_empty());
        sw.chassis.send(0, frame(1, 2)); // now unicast to port 2
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.recv(2).len(), 1);
        assert!(sw.chassis.recv(1).is_empty());
        assert!(sw.chassis.recv(3).is_empty());
    }

    #[test]
    fn broadcast_floods() {
        let mut sw = switch();
        let bcast = PacketBuilder::new()
            .eth(mac(1), EthernetAddress::BROADCAST)
            .raw(netfpga_packet::EtherType::Arp, &[0; 46])
            .build();
        sw.chassis.send(3, bcast);
        sw.chassis.run_for(Time::from_us(10));
        for p in 0..3 {
            assert_eq!(sw.chassis.recv(p).len(), 1, "port {p}");
        }
        assert!(sw.chassis.recv(3).is_empty());
    }

    #[test]
    fn hairpin_to_ingress_is_dropped() {
        let mut sw = switch();
        // Learn A@0, then send a frame addressed to A in on port 0.
        sw.chassis.send(0, frame(1, 9));
        sw.chassis.run_for(Time::from_us(10));
        for p in 0..4 {
            sw.chassis.recv(p);
        }
        sw.chassis.send(0, frame(3, 1)); // dst = mac 1, learned on port 0
        sw.chassis.run_for(Time::from_us(10));
        for p in 0..4 {
            assert!(sw.chassis.recv(p).is_empty(), "port {p}");
        }
    }

    #[test]
    fn registers_expose_lookup_stats() {
        let mut sw = switch();
        sw.chassis.send(0, frame(1, 2)); // flood
        sw.chassis.run_for(Time::from_us(10));
        sw.chassis.send(1, frame(2, 1)); // hit
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.read32(LOOKUP_BASE), 1, "hits");
        assert_eq!(sw.chassis.read32(LOOKUP_BASE + 4), 1, "floods");
        assert_eq!(sw.chassis.read32(LOOKUP_BASE + 8), 2, "learned");
        assert_eq!(sw.chassis.read32(STATS_BASE), 2, "rx packets");
        // Write flushes the table: next frame floods again.
        sw.chassis.write32(LOOKUP_BASE, 1);
        sw.chassis.send(0, frame(1, 2));
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.read32(LOOKUP_BASE + 4), 2, "flood after flush");
    }

    /// The burst fast path must be functionally invisible: the same
    /// traffic pattern produces the same frames on the same ports, the
    /// same learning-table evolution, and the same register counters as
    /// the cycle-paced build.
    #[test]
    fn fast_path_is_functionally_identical() {
        let run = |fast: bool| {
            let mut sw = ReferenceSwitch::with_fast_path(
                &BoardSpec::sume(),
                4,
                1024,
                Time::from_ms(100),
                fast,
            );
            // A mixed workload: floods, learned unicasts, a broadcast and
            // a hairpin drop, phased so learning order is deterministic.
            let flows = [(0, 1, 2), (2, 2, 1), (1, 3, 2), (0, 1, 3), (3, 4, 1)];
            for &(port, src, dst) in &flows {
                sw.chassis.send(port, frame(src, dst));
                sw.chassis.run_for(Time::from_us(10));
            }
            sw.chassis.send(0, frame(3, 1)); // hairpin: dst learned on port 0
            for _ in 0..20 {
                sw.chassis.send(1, frame(3, 2)); // sustained unicast burst
            }
            sw.chassis.run_for(Time::from_us(50));
            let per_port: Vec<Vec<Vec<u8>>> = (0..4).map(|p| sw.chassis.recv(p)).collect();
            let hits = sw.chassis.read32(LOOKUP_BASE);
            let floods = sw.chassis.read32(LOOKUP_BASE + 4);
            let learned = sw.chassis.read32(LOOKUP_BASE + 8);
            let rx_packets = sw.chassis.read32(STATS_BASE);
            (per_port, hits, floods, learned, rx_packets)
        };
        assert_eq!(run(false), run(true));
    }

    fn udp(src: u8, dst: u8, sport: u16) -> Vec<u8> {
        use netfpga_packet::Ipv4Address;
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .ipv4(
                Ipv4Address::new(10, 0, 0, src),
                Ipv4Address::new(10, 0, 0, dst),
            )
            .udp(sport, 80, &[0xab; 40])
            .build()
    }

    #[test]
    fn flowmon_switch_accounts_flows_end_to_end() {
        let mut sw = ReferenceSwitch::with_flowmon(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FlowmonConfig::default(),
        );
        let mon = sw.flowmon.clone().expect("flowmon mounted");
        // Three flows with distinct packet counts: 6, 3, 1.
        for _ in 0..6 {
            sw.chassis.send(0, udp(1, 2, 1000));
        }
        for _ in 0..3 {
            sw.chassis.send(1, udp(2, 1, 2000));
        }
        sw.chassis.send(2, udp(3, 1, 3000));
        // Long enough for delivery plus at least one exporter sample at
        // the default 50 µs cadence.
        sw.chassis.run_for(Time::from_us(150));
        assert_eq!(mon.packets(), 10);
        assert_eq!(mon.tracked(), 3);
        let top = mon.top_talkers(2);
        assert_eq!(top[0].packets, 6);
        assert_eq!((top[0].flow.src_port, top[1].flow.src_port), (1000, 2000));
        // The MMIO block self-describes and matches the handle.
        assert_eq!(
            sw.chassis.read32(FLOWMON_BASE),
            netfpga_flowmon::FLOWMON_MAGIC
        );
        assert_eq!(sw.chassis.read32(FLOWMON_BASE + 0x10), 3, "flows tracked");
        assert_eq!(sw.chassis.read32(FLOWMON_BASE + 0x14), 10, "packets");
        // Quantile gauges exist and the exporter has sampled.
        let exp = sw.exporter.clone().expect("exporter mounted");
        assert!(exp.snapshots() > 0, "exporter sampled during the run");
        let prom = exp.prometheus();
        assert!(prom.contains("netfpga_flowmon_packets 10\n"), "{prom}");
        assert!(prom.contains("netfpga_port0_q0_depth_p99 "));
    }

    /// The tap must be invisible to forwarding: same frames on the same
    /// ports, same learning evolution, same lookup counters as a
    /// flowmon-less build.
    #[test]
    fn flowmon_tap_is_functionally_invisible() {
        let run = |flowmon: bool| {
            let mut sw = if flowmon {
                ReferenceSwitch::with_flowmon(
                    &BoardSpec::sume(),
                    4,
                    1024,
                    Time::from_ms(100),
                    false,
                    FlowmonConfig::default(),
                )
            } else {
                switch()
            };
            let flows = [(0u8, 1u8, 2u8), (2, 2, 1), (1, 3, 2), (0, 1, 3)];
            for &(port, src, dst) in &flows {
                sw.chassis.send(usize::from(port), udp(src, dst, 4000));
                sw.chassis.run_for(Time::from_us(10));
            }
            sw.chassis.run_for(Time::from_us(50));
            let per_port: Vec<Vec<Vec<u8>>> = (0..4).map(|p| sw.chassis.recv(p)).collect();
            let hits = sw.chassis.read32(LOOKUP_BASE);
            let floods = sw.chassis.read32(LOOKUP_BASE + 4);
            (per_port, hits, floods)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn resource_cost_fits() {
        assert!(ReferenceSwitch::resource_cost(4).fits(&BoardSpec::sume().resources));
        // Switch costs more than NIC (extra lookup logic).
        assert!(
            ReferenceSwitch::resource_cost(4).luts
                > crate::reference_nic::ReferenceNic::resource_cost(4).luts
        );
    }
}
