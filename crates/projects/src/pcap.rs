//! Minimal pcap (libpcap) file writing and reading — the format the real
//! OSNT capture pipeline delivers to analysis tools. Nanosecond-resolution
//! variant (magic `0xa1b23c4d`), LINKTYPE_ETHERNET.

use netfpga_core::time::Time;
use std::io::{self, Read, Write};

/// Nanosecond-resolution pcap magic.
const MAGIC_NS: u32 = 0xa1b2_3c4d;
/// LINKTYPE_ETHERNET.
const LINKTYPE_EN10MB: u32 = 1;
/// Snap length written to the global header.
const SNAPLEN: u32 = 65535;

/// Write a pcap stream: global header plus one record per `(time, frame)`.
/// Frames are anything byte-sliceable ([`Vec<u8>`], `PktBuf`, `&[u8]`), so
/// captures stream out without copying their payloads. Returns the number
/// of records written.
pub fn write_pcap<W: Write, D: AsRef<[u8]>>(
    mut w: W,
    records: impl IntoIterator<Item = (Time, D)>,
) -> io::Result<usize> {
    w.write_all(&MAGIC_NS.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_EN10MB.to_le_bytes())?;
    let mut n = 0;
    for (ts, frame) in records {
        let frame = frame.as_ref();
        let ps = ts.as_ps();
        let sec = (ps / 1_000_000_000_000) as u32;
        let nsec = ((ps % 1_000_000_000_000) / 1_000) as u32;
        let len = frame.len() as u32;
        w.write_all(&sec.to_le_bytes())?;
        w.write_all(&nsec.to_le_bytes())?;
        w.write_all(&len.min(SNAPLEN).to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&frame[..frame.len().min(SNAPLEN as usize)])?;
        n += 1;
    }
    Ok(n)
}

/// Read a pcap stream written by [`write_pcap`] (nanosecond magic only).
/// Returns `(time, frame)` records.
pub fn read_pcap<R: Read>(mut r: R) -> io::Result<Vec<(Time, Vec<u8>)>> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != MAGIC_NS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported pcap magic {magic:#010x}"),
        ));
    }
    let mut records = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let sec = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64;
        let nsec = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64;
        let incl = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data)?;
        records.push((Time::from_ps(sec * 1_000_000_000_000 + nsec * 1_000), data));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            (Time::from_ns(1_500), vec![0xaau8; 60]),
            (Time::from_us(3), vec![0x55u8; 1514]),
            (Time::from_ms(1_234), (0..100u8).collect()),
        ];
        let mut buf = Vec::new();
        let n = write_pcap(&mut buf, records.clone()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(buf.len(), 24 + 3 * 16 + 60 + 1514 + 100);
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn subnanosecond_truncates_to_ns() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, vec![(Time::from_ps(1_999), vec![1u8; 14])]).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back[0].0, Time::from_ns(1));
    }

    #[test]
    fn rejects_foreign_magic() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, Vec::<(Time, Vec<u8>)>::new()).unwrap();
        buf[0] ^= 0xff;
        assert!(read_pcap(&buf[..]).is_err());
    }

    #[test]
    fn empty_capture_is_valid() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, Vec::<(Time, Vec<u8>)>::new()).unwrap();
        assert_eq!(read_pcap(&buf[..]).unwrap(), vec![]);
    }
}
