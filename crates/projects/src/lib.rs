//! # netfpga-projects
//!
//! The NetFPGA project library: the reference designs every release ships
//! plus the contributed projects the paper highlights, each assembled from
//! the `netfpga-datapath` building blocks on a simulated board chassis.
//!
//! | Module | Project |
//! |--------|---------|
//! | [`acceptance`] | the I/O-exercise design ("a project that exercises all the I/O interfaces") |
//! | [`reference_nic`] | the reference NIC |
//! | [`reference_switch`] | the reference learning switch |
//! | [`switch_lite`] | the cut-down learning switch (no host path, no output queues) |
//! | [`reference_router`] | the reference IPv4 router with its CPU exception path |
//! | [`blueswitch`] | BlueSwitch: multi-table OpenFlow switch with consistent (atomic) updates |
//! | [`osnt`] | OSNT: the open-source network tester (generator + capture) |
//! | [`harness`] | the board chassis the projects are loaded onto |
//! | [`inventory`] | cross-project block-reuse and utilization data (experiment E7) |
//!
//! Every project follows the same shape: a constructor wires the pipeline
//! between the chassis's MAC edge streams, mounts register blocks on the
//! address map, and returns handles for the host side. Tests drive them
//! exactly as a user drives the real boards: frames in at ports, frames
//! out at ports, registers over MMIO, packets over DMA.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod acceptance;
pub mod blueswitch;
pub mod fabric;
pub mod harness;
pub mod inventory;
pub mod osnt;
pub mod pcap;
pub mod reference_nic;
pub mod reference_router;
pub mod reference_switch;
pub mod switch_lite;

pub use acceptance::AcceptanceTest;
pub use blueswitch::BlueSwitch;
pub use harness::{Chassis, ChassisIo};
/// The flow-monitoring plane (re-exported so projects-level consumers
/// reach `FlowmonConfig` and friends without a separate dependency).
pub use netfpga_flowmon as flowmon;
pub use osnt::OsntTester;
pub use reference_nic::ReferenceNic;
pub use reference_router::ReferenceRouter;
pub use reference_switch::ReferenceSwitch;
pub use switch_lite::SwitchLite;
