//! BlueSwitch: the contributed multi-table OpenFlow switch with
//! **provably consistent configuration** (Han et al., ANCS 2015 — cited by
//! the paper as a flagship community project).
//!
//! The data plane is a pipeline of TCAM match-action tables. Its defining
//! feature is the *atomic update*: every table is double-banked; the
//! controller writes a complete new configuration into the shadow banks
//! and then issues one commit that flips all tables to the new banks
//! simultaneously. Every packet is therefore classified against exactly
//! one configuration version — never a mixture — which is the property
//! experiment E5 measures against a naive write-in-place baseline.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::{shared, AddressMap, RegisterSpace};
use netfpga_core::resources::ResourceCost;
use netfpga_core::stream::{Meta, PortMask, Stream};
use netfpga_core::time::Time;
use netfpga_datapath::blocks;
use netfpga_datapath::queues::{OutputQueues, QueueConfig};
use netfpga_datapath::sched::Fifo;
use netfpga_datapath::stage::{PacketLogic, StageAction};
use netfpga_datapath::{InputArbiter, PacketStage, ParsedHeaders};
use netfpga_mem::{Tcam, TcamEntry, TernaryKey};
use std::cell::RefCell;
use std::rc::Rc;

/// Width of the packed flow key in bytes:
/// `in_port(1) ‖ eth_dst(6) ‖ eth_src(6) ‖ ethertype(2) ‖ ip_src(4) ‖
/// ip_dst(4) ‖ ip_proto(1) ‖ l4_src(2) ‖ l4_dst(2)`.
pub const KEY_WIDTH: usize = 28;

/// Pack the match key of a packet.
pub fn flow_key(packet: &[u8], meta: &Meta) -> [u8; KEY_WIDTH] {
    let h = ParsedHeaders::parse(packet);
    let mut k = [0u8; KEY_WIDTH];
    k[0] = meta.src_port;
    k[1..7].copy_from_slice(h.eth_dst.as_bytes());
    k[7..13].copy_from_slice(h.eth_src.as_bytes());
    k[13..15].copy_from_slice(&h.ethertype.to_be_bytes());
    if let Some(ip) = h.ipv4 {
        k[15..19].copy_from_slice(ip.src.as_bytes());
        k[19..23].copy_from_slice(ip.dst.as_bytes());
        k[23] = ip.protocol.into();
        if let Some((sp, dp)) = ip.l4 {
            k[24..26].copy_from_slice(&sp.to_be_bytes());
            k[26..28].copy_from_slice(&dp.to_be_bytes());
        }
    }
    k
}

/// Builder for ternary flow-rule keys over the packed layout.
#[derive(Debug, Clone)]
pub struct FlowKeyBuilder {
    value: [u8; KEY_WIDTH],
    mask: [u8; KEY_WIDTH],
}

impl Default for FlowKeyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowKeyBuilder {
    /// Start from an all-wildcard key.
    pub fn new() -> FlowKeyBuilder {
        FlowKeyBuilder {
            value: [0; KEY_WIDTH],
            mask: [0; KEY_WIDTH],
        }
    }

    fn set(mut self, range: core::ops::Range<usize>, bytes: &[u8]) -> Self {
        self.value[range.clone()].copy_from_slice(bytes);
        for m in &mut self.mask[range] {
            *m = 0xff;
        }
        self
    }

    /// Match the ingress port.
    pub fn in_port(self, port: u8) -> Self {
        self.set(0..1, &[port])
    }

    /// Match the destination MAC.
    pub fn eth_dst(self, mac: netfpga_packet::EthernetAddress) -> Self {
        self.set(1..7, mac.as_bytes())
    }

    /// Match the source MAC.
    pub fn eth_src(self, mac: netfpga_packet::EthernetAddress) -> Self {
        self.set(7..13, mac.as_bytes())
    }

    /// Match the EtherType.
    pub fn ethertype(self, et: u16) -> Self {
        self.set(13..15, &et.to_be_bytes())
    }

    /// Match the IPv4 source.
    pub fn ip_src(self, ip: netfpga_packet::Ipv4Address) -> Self {
        self.set(15..19, ip.as_bytes())
    }

    /// Match the IPv4 destination.
    pub fn ip_dst(self, ip: netfpga_packet::Ipv4Address) -> Self {
        self.set(19..23, ip.as_bytes())
    }

    /// Match the IP protocol.
    pub fn ip_proto(self, proto: u8) -> Self {
        self.set(23..24, &[proto])
    }

    /// Match the L4 destination port.
    pub fn l4_dst(self, port: u16) -> Self {
        self.set(26..28, &port.to_be_bytes())
    }

    /// Finish into a ternary key.
    pub fn build(self) -> TernaryKey {
        TernaryKey::new(&self.value, &self.mask)
    }
}

/// What a matching rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Emit on the given ports.
    Output(PortMask),
    /// Discard.
    Drop,
    /// Punt to the controller (CPU port).
    Controller,
}

/// A rule's action, tagged with the configuration version that installed
/// it — the tag is how the consistency experiment detects mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowAction {
    /// The behaviour.
    pub kind: ActionKind,
    /// Configuration tag (controller-chosen; usually the config version).
    pub tag: u64,
}

/// One rule: ternary key, priority, action.
pub type FlowRule = TcamEntry<FlowAction>;

/// Result of classifying one packet.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Actions of every matching table, in table order.
    pub matched: Vec<FlowAction>,
    /// The effective action (last matching table wins; `Controller` on a
    /// full miss, per OpenFlow table-miss behaviour).
    pub action: ActionKind,
    /// True if the matched rules carry differing tags — a consistency
    /// violation when rules of one config share one tag.
    pub mixed_tags: bool,
}

/// The double-banked multi-table pipeline.
pub struct MatchActionPipeline {
    tables: Vec<[Tcam<FlowAction>; 2]>,
    /// Per-table, per-bank, per-slot packet hit counters (OpenFlow flow
    /// statistics). Cleared with the slot's bank on `clear_*`.
    hits: Vec<[Vec<u64>; 2]>,
    active: usize,
    version: u64,
}

impl MatchActionPipeline {
    /// A pipeline of `ntables` tables of `capacity` rules each.
    pub fn new(ntables: usize, capacity: usize) -> MatchActionPipeline {
        assert!(ntables >= 1);
        MatchActionPipeline {
            tables: (0..ntables)
                .map(|_| {
                    [
                        Tcam::new(capacity, KEY_WIDTH),
                        Tcam::new(capacity, KEY_WIDTH),
                    ]
                })
                .collect(),
            hits: (0..ntables)
                .map(|_| [vec![0; capacity], vec![0; capacity]])
                .collect(),
            active: 0,
            version: 0,
        }
    }

    /// Number of tables.
    pub fn ntables(&self) -> usize {
        self.tables.len()
    }

    /// The committed configuration version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rules installed in the active bank of `table`.
    pub fn active_len(&self, table: usize) -> usize {
        self.tables[table][self.active].len()
    }

    /// Classify a key against the active configuration. The bank is
    /// latched once for the whole pipeline walk, which is exactly the
    /// hardware guarantee.
    pub fn classify(&mut self, key: &[u8; KEY_WIDTH]) -> Classification {
        let bank = self.active;
        let mut matched = Vec::new();
        for (t, hits) in self.tables.iter_mut().zip(self.hits.iter_mut()) {
            if let Some((slot, action)) = t[bank].lookup_slot(key) {
                hits[bank][slot] += 1;
                matched.push(*action);
            }
        }
        let action = matched
            .last()
            .map(|a| a.kind)
            .unwrap_or(ActionKind::Controller);
        let mixed_tags = matched.windows(2).any(|w| w[0].tag != w[1].tag);
        Classification {
            matched,
            action,
            mixed_tags,
        }
    }

    /// Consistent path: write a rule into the **shadow** bank of `table`.
    /// Invisible to traffic until [`MatchActionPipeline::commit`].
    pub fn write_shadow(&mut self, table: usize, rule: FlowRule) -> bool {
        let shadow = 1 - self.active;
        self.tables[table][shadow].insert(rule).is_some()
    }

    /// Per-rule packet count of the rule in `slot` of `table`'s active
    /// bank — OpenFlow flow statistics.
    pub fn rule_hits(&self, table: usize, slot: usize) -> u64 {
        self.hits[table][self.active][slot]
    }

    /// Clear the shadow bank of every table (start of a new config push).
    pub fn clear_shadow(&mut self) {
        let shadow = 1 - self.active;
        for (t, hits) in self.tables.iter_mut().zip(self.hits.iter_mut()) {
            t[shadow].clear();
            hits[shadow].iter_mut().for_each(|h| *h = 0);
        }
    }

    /// Atomic commit: flip every table to its shadow bank in one step.
    pub fn commit(&mut self) {
        self.active = 1 - self.active;
        self.version += 1;
    }

    /// Naive baseline: write a rule **directly into the active bank**,
    /// visible to the very next packet — the unsound update style
    /// BlueSwitch exists to eliminate.
    pub fn write_direct(&mut self, table: usize, rule: FlowRule) -> bool {
        let active = self.active;
        self.tables[table][active].insert(rule).is_some()
    }

    /// Naive baseline: clear a table's active bank in place.
    pub fn clear_direct(&mut self, table: usize) {
        let active = self.active;
        self.tables[table][active].clear();
        self.hits[table][active].iter_mut().for_each(|h| *h = 0);
    }
}

/// The flow tables as one upset target. The pipeline's TCAMs are
/// flattened into a single index space, table-major then bank-major:
/// `index = (table * 2 + bank) * capacity + slot`. Registering the
/// pipeline with the fault plane
/// ([`FaultHandle::register_memory`](netfpga_faults::FaultHandle::register_memory))
/// exposes every key cell of every bank — active and shadow alike — to
/// `MemFlip` upsets, which is how the TCAM-consistency scenario stresses
/// the atomic-update guarantee: a corrupted key can only *miss* (the
/// packet falls through to a lower table or the table-miss punt); it can
/// never splice rules of two configuration versions into one walk,
/// because the bank latch is per-walk and tags travel with the rules.
impl netfpga_faults::FaultableMemory for MatchActionPipeline {
    fn flip_bit(&mut self, index: usize, bit: usize) -> bool {
        let cap = self.tables[0][0].capacity();
        if cap == 0 {
            return false;
        }
        let (word, slot) = (index / cap, index % cap);
        let (table, bank) = (word / 2, word % 2);
        match self.tables.get_mut(table) {
            Some(banks) => netfpga_faults::FaultableMemory::flip_bit(&mut banks[bank], slot, bit),
            None => false,
        }
    }

    fn entries(&self) -> usize {
        self.tables.len() * 2 * self.tables[0][0].capacity()
    }

    fn bits_per_entry(&self) -> usize {
        self.tables[0][0].key_bits_per_slot()
    }
}

/// Datapath counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlueSwitchCounters {
    /// Packets classified.
    pub packets: u64,
    /// Packets that matched at least one table.
    pub matched: u64,
    /// Packets whose matched rules carried mixed configuration tags.
    pub mixed_tag_packets: u64,
    /// Packets punted to the controller.
    pub to_controller: u64,
    /// Packets dropped by rule.
    pub dropped: u64,
}

struct BlueSwitchLookup {
    pipeline: Rc<RefCell<MatchActionPipeline>>,
    counters: Rc<RefCell<BlueSwitchCounters>>,
    cpu_port: u8,
}

impl PacketLogic for BlueSwitchLookup {
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, _now: Time) -> StageAction {
        let key = flow_key(packet, meta);
        let result = self.pipeline.borrow_mut().classify(&key);
        let mut c = self.counters.borrow_mut();
        c.packets += 1;
        if !result.matched.is_empty() {
            c.matched += 1;
        }
        if result.mixed_tags {
            c.mixed_tag_packets += 1;
        }
        match result.action {
            ActionKind::Output(mask) => {
                meta.dst_ports = mask;
                meta.flags = 0;
                StageAction::Forward
            }
            ActionKind::Drop => {
                c.dropped += 1;
                StageAction::Drop
            }
            ActionKind::Controller => {
                c.to_controller += 1;
                meta.dst_ports = PortMask::single(self.cpu_port);
                meta.flags = ofl_flag();
                StageAction::Forward
            }
        }
    }
}

/// Flag value marking controller punts.
fn ofl_flag() -> u16 {
    0x0f10
}

/// Register base of the BlueSwitch control block.
pub const BLUESWITCH_BASE: u32 = 0x3000;

mod cmd {
    pub const WRITE_SHADOW: u32 = 1;
    pub const COMMIT: u32 = 2;
    pub const CLEAR_SHADOW: u32 = 3;
    pub const WRITE_DIRECT: u32 = 4;
    pub const CLEAR_DIRECT: u32 = 5;
}

/// BlueSwitch register block (word offsets):
///
/// | word | register |
/// |------|----------|
/// | 0 | command (write executes) |
/// | 1 | table index |
/// | 2 | priority |
/// | 3 | action kind (0 = output, 1 = drop, 2 = controller) |
/// | 4 | action port mask |
/// | 5 | config tag (low 32 bits) |
/// | 8..14 | staged key value (28 bytes) |
/// | 16..22 | staged key mask (28 bytes) |
/// | 6 | slot selector for flow statistics |
/// | 24 | committed version (RO) |
/// | 25 | packets (RO) |
/// | 26 | mixed-tag packets (RO) |
/// | 27 | controller punts (RO) |
/// | 28 | hit count of rule (table = word 1, slot = word 6) (RO) |
pub struct BlueSwitchRegisters {
    pipeline: Rc<RefCell<MatchActionPipeline>>,
    counters: Rc<RefCell<BlueSwitchCounters>>,
    stage: [u32; 24],
}

impl BlueSwitchRegisters {
    fn staged_rule(&self) -> FlowRule {
        let mut value = [0u8; KEY_WIDTH];
        let mut mask = [0u8; KEY_WIDTH];
        for i in 0..7 {
            value[i * 4..i * 4 + 4].copy_from_slice(&self.stage[8 + i].to_be_bytes());
            mask[i * 4..i * 4 + 4].copy_from_slice(&self.stage[16 + i].to_be_bytes());
        }
        let kind = match self.stage[3] {
            0 => ActionKind::Output(PortMask(self.stage[4] as u16)),
            1 => ActionKind::Drop,
            _ => ActionKind::Controller,
        };
        TcamEntry {
            key: TernaryKey::new(&value, &mask),
            priority: self.stage[2],
            value: FlowAction {
                kind,
                tag: u64::from(self.stage[5]),
            },
        }
    }
}

impl RegisterSpace for BlueSwitchRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        match offset / 4 {
            w @ 1..=23 => self.stage.get(w as usize).copied().unwrap_or(0),
            24 => self.pipeline.borrow().version() as u32,
            25 => self.counters.borrow().packets as u32,
            26 => self.counters.borrow().mixed_tag_packets as u32,
            27 => self.counters.borrow().to_controller as u32,
            28 => {
                let p = self.pipeline.borrow();
                let table = (self.stage[1] as usize).min(p.ntables() - 1);
                p.rule_hits(table, self.stage[6] as usize) as u32
            }
            _ => netfpga_core::regs::UNMAPPED_READ,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        let word = offset / 4;
        match word {
            0 => {
                let mut p = self.pipeline.borrow_mut();
                let table = (self.stage[1] as usize).min(p.ntables() - 1);
                match value {
                    cmd::WRITE_SHADOW => {
                        let rule = self.staged_rule();
                        p.write_shadow(table, rule);
                    }
                    cmd::COMMIT => p.commit(),
                    cmd::CLEAR_SHADOW => p.clear_shadow(),
                    cmd::WRITE_DIRECT => {
                        let rule = self.staged_rule();
                        p.write_direct(table, rule);
                    }
                    cmd::CLEAR_DIRECT => p.clear_direct(table),
                    _ => {}
                }
            }
            w @ 1..=23 => {
                if let Some(slot) = self.stage.get_mut(w as usize) {
                    *slot = value;
                }
            }
            _ => {}
        }
    }
}

/// The assembled BlueSwitch.
pub struct BlueSwitch {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// The match-action pipeline (tests drive updates directly; the
    /// controller in `netfpga-host` goes through registers).
    pub pipeline: Rc<RefCell<MatchActionPipeline>>,
    /// Datapath counters.
    pub counters: Rc<RefCell<BlueSwitchCounters>>,
    /// CPU (controller) port index.
    pub cpu_port: u8,
}

impl BlueSwitch {
    /// Build on `spec` with `nports` ports, `ntables` match tables of
    /// `capacity` rules.
    pub fn new(spec: &BoardSpec, nports: usize, ntables: usize, capacity: usize) -> BlueSwitch {
        BlueSwitch::with_faults(
            spec,
            nports,
            ntables,
            capacity,
            netfpga_faults::FaultPlan::none(),
        )
    }

    /// Same, with the fault-injection plane spliced in executing `plan`
    /// (see [`Chassis::with_faults`]). The whole match-action pipeline is
    /// registered with the injector as memory `"flow_tcam"` under parity
    /// protection — TCAM key cells carry no ECC, so upsets are detected
    /// (the corrupted rule stops matching) but never silently repaired.
    pub fn with_faults(
        spec: &BoardSpec,
        nports: usize,
        ntables: usize,
        capacity: usize,
        plan: netfpga_faults::FaultPlan,
    ) -> BlueSwitch {
        let (mut chassis, io) = Chassis::with_faults(spec, nports, AddressMap::new(), false, plan);
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let w = chassis.bus_width();
        let cpu_port = nports as u8;

        let pipeline = Rc::new(RefCell::new(MatchActionPipeline::new(ntables, capacity)));
        let counters = Rc::new(RefCell::new(BlueSwitchCounters::default()));
        if let Some(handle) = &chassis.faults {
            handle.register_memory(
                "flow_tcam",
                netfpga_faults::EccMode::Parity,
                pipeline.clone(),
            );
        }

        let (h2c_tx, h2c_rx) = Stream::new(64, w);
        let mut inputs = from_ports;
        inputs.push(h2c_rx);
        let (arb_tx, arb_rx) = Stream::new(64, w);
        let arbiter = InputArbiter::new("input_arbiter", inputs, arb_tx);
        let (lookup_tx, lookup_rx) = Stream::new(64, w);
        let lookup = PacketStage::new(
            "match_action",
            arb_rx,
            lookup_tx,
            // One cycle per table plus parse, like the RTL pipeline.
            4 + ntables as u64,
            BlueSwitchLookup {
                pipeline: pipeline.clone(),
                counters: counters.clone(),
                cpu_port,
            },
        );
        let (c2h_tx, c2h_rx) = Stream::new(64, w);
        let mut outputs = to_ports;
        outputs.push(c2h_tx);
        let oq = OutputQueues::new(
            "output_queues",
            lookup_rx,
            outputs,
            QueueConfig::default(),
            || Box::new(Fifo),
        );

        lookup.register_stats(&chassis.telemetry, "pipeline.lookup");
        oq.register_stats(&chassis.telemetry, "oq");
        oq.register_depth_gauges(&chassis.telemetry, "");
        {
            type Field = fn(&BlueSwitchCounters) -> u64;
            let fields: [(&str, Field); 5] = [
                ("packets", |c| c.packets),
                ("matched", |c| c.matched),
                ("mixed_tag_packets", |c| c.mixed_tag_packets),
                ("to_controller", |c| c.to_controller),
                ("dropped", |c| c.dropped),
            ];
            for (name, field) in fields {
                let counters = counters.clone();
                chassis
                    .telemetry
                    .gauge(&format!("blueswitch.{name}"), move || {
                        field(&counters.borrow())
                    });
            }
        }
        chassis.add_module(arbiter);
        chassis.add_module(lookup);
        chassis.add_module(oq);
        chassis.attach_dma(h2c_tx, c2h_rx);
        chassis.map.mount(
            "blueswitch",
            BLUESWITCH_BASE,
            0x100,
            shared(BlueSwitchRegisters {
                pipeline: pipeline.clone(),
                counters: counters.clone(),
                stage: [0; 24],
            }),
        );
        chassis.attach_mmio();

        BlueSwitch {
            chassis,
            pipeline,
            counters,
            cpu_port,
        }
    }

    /// Approximate FPGA cost (experiment E7).
    pub fn resource_cost(nports: u64, ntables: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::INPUT_ARBITER
            + blocks::MATCH_ACTION_TABLE.times(ntables * 2) // double-banked
            + blocks::OUTPUT_QUEUES_PER_PORT.times(nports + 1)
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &[
            "mac_10g",
            "pcie_dma",
            "reg_interconnect",
            "input_arbiter",
            "match_action_table",
            "output_queues",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn udp_frame(dst_port: u16) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(5555, dst_port, b"x")
            .build()
    }

    fn output(ports: PortMask, tag: u64) -> FlowAction {
        FlowAction {
            kind: ActionKind::Output(ports),
            tag,
        }
    }

    #[test]
    fn key_packing_roundtrip() {
        let frame = udp_frame(80);
        let meta = Meta {
            src_port: 3,
            ..Default::default()
        };
        let k = flow_key(&frame, &meta);
        assert_eq!(k[0], 3);
        assert_eq!(&k[1..7], mac(2).as_bytes());
        assert_eq!(&k[7..13], mac(1).as_bytes());
        assert_eq!(u16::from_be_bytes([k[13], k[14]]), 0x0800);
        assert_eq!(k[23], 17);
        assert_eq!(u16::from_be_bytes([k[26], k[27]]), 80);
    }

    #[test]
    fn pipeline_match_and_default() {
        let mut p = MatchActionPipeline::new(2, 16);
        p.write_direct(
            0,
            TcamEntry {
                key: FlowKeyBuilder::new().l4_dst(80).ethertype(0x0800).build(),
                priority: 1,
                value: output(PortMask::single(1), 7),
            },
        );
        let frame = udp_frame(80);
        let key = flow_key(&frame, &Meta::default());
        let c = p.classify(&key);
        assert_eq!(c.action, ActionKind::Output(PortMask::single(1)));
        assert!(!c.mixed_tags);
        // Unmatched -> controller.
        let key2 = flow_key(&udp_frame(443), &Meta::default());
        assert_eq!(p.classify(&key2).action, ActionKind::Controller);
    }

    #[test]
    fn later_table_overrides() {
        let mut p = MatchActionPipeline::new(2, 16);
        p.write_direct(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 0,
                value: output(PortMask::single(1), 1),
            },
        );
        p.write_direct(
            1,
            TcamEntry {
                key: FlowKeyBuilder::new().l4_dst(80).build(),
                priority: 0,
                value: FlowAction {
                    kind: ActionKind::Drop,
                    tag: 1,
                },
            },
        );
        let c = p.classify(&flow_key(&udp_frame(80), &Meta::default()));
        assert_eq!(c.action, ActionKind::Drop);
        assert_eq!(c.matched.len(), 2);
        let c = p.classify(&flow_key(&udp_frame(22), &Meta::default()));
        assert_eq!(c.action, ActionKind::Output(PortMask::single(1)));
    }

    #[test]
    fn shadow_writes_invisible_until_commit() {
        let mut p = MatchActionPipeline::new(1, 16);
        p.write_shadow(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 0,
                value: output(PortMask::single(2), 1),
            },
        );
        let key = flow_key(&udp_frame(80), &Meta::default());
        assert_eq!(
            p.classify(&key).action,
            ActionKind::Controller,
            "not visible"
        );
        p.commit();
        assert_eq!(
            p.classify(&key).action,
            ActionKind::Output(PortMask::single(2)),
            "visible after commit"
        );
        assert_eq!(p.version(), 1);
    }

    /// The headline property: with consistent updates, no packet ever sees
    /// rules from two configurations; with naive in-place updates between
    /// classifications, packets do.
    #[test]
    fn atomic_commit_never_mixes_tags() {
        // Config v1: both tables tag 1. Shadow-write config v2 (tag 2)
        // rule-by-rule, classifying between every write.
        let mut p = MatchActionPipeline::new(2, 16);
        for t in 0..2 {
            p.write_direct(
                t,
                TcamEntry {
                    key: TernaryKey::wildcard(KEY_WIDTH),
                    priority: 0,
                    value: output(PortMask::single(1), 1),
                },
            );
        }
        let key = flow_key(&udp_frame(80), &Meta::default());
        let mut mixed = 0;
        for t in 0..2 {
            p.clear_shadow();
            // (clear_shadow only once; keep writing rules across steps)
            p.write_shadow(
                t,
                TcamEntry {
                    key: TernaryKey::wildcard(KEY_WIDTH),
                    priority: 5,
                    value: output(PortMask::single(2), 2),
                },
            );
            if p.classify(&key).mixed_tags {
                mixed += 1;
            }
        }
        assert_eq!(mixed, 0, "shadow writes never mix");
        // Note: clear_shadow inside the loop wiped table 0's shadow; write
        // both properly before commit.
        p.clear_shadow();
        for t in 0..2 {
            p.write_shadow(
                t,
                TcamEntry {
                    key: TernaryKey::wildcard(KEY_WIDTH),
                    priority: 5,
                    value: output(PortMask::single(2), 2),
                },
            );
        }
        p.commit();
        let c = p.classify(&key);
        assert!(!c.mixed_tags);
        assert_eq!(c.action, ActionKind::Output(PortMask::single(2)));
    }

    #[test]
    fn naive_updates_do_mix_tags() {
        let mut p = MatchActionPipeline::new(2, 16);
        for t in 0..2 {
            p.write_direct(
                t,
                TcamEntry {
                    key: TernaryKey::wildcard(KEY_WIDTH),
                    priority: 0,
                    value: output(PortMask::single(1), 1),
                },
            );
        }
        let key = flow_key(&udp_frame(80), &Meta::default());
        // Update table 0 to config 2, classify before table 1 is updated.
        p.clear_direct(0);
        p.write_direct(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 5,
                value: output(PortMask::single(2), 2),
            },
        );
        let c = p.classify(&key);
        assert!(
            c.mixed_tags,
            "packet saw config 2 in table 0, config 1 in table 1"
        );
    }

    #[test]
    fn end_to_end_forwarding() {
        let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 2, 64);
        sw.pipeline.borrow_mut().write_direct(
            0,
            TcamEntry {
                key: FlowKeyBuilder::new().in_port(0).build(),
                priority: 1,
                value: output(PortMask::single(3), 1),
            },
        );
        sw.chassis.send(0, udp_frame(80));
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.recv(3).len(), 1);
        assert_eq!(sw.counters.borrow().matched, 1);
    }

    #[test]
    fn table_miss_goes_to_controller() {
        let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 2, 64);
        sw.chassis.send(0, udp_frame(80));
        sw.chassis.run_for(Time::from_us(10));
        let dma = sw.chassis.dma.clone().unwrap();
        let (_, meta) = dma.recv().expect("punted to controller");
        assert_eq!(meta.src_port, 0);
        assert_eq!(sw.counters.borrow().to_controller, 1);
    }

    #[test]
    fn register_protocol_installs_rules() {
        let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 1, 64);
        let b = BLUESWITCH_BASE;
        // Stage a wildcard rule: output port 2, tag 9, priority 1.
        sw.chassis.write32(b + 4, 0); // table 0
        sw.chassis.write32(b + 8, 1); // priority
        sw.chassis.write32(b + 12, 0); // action kind output
        sw.chassis.write32(b + 16, u32::from(PortMask::single(2).0));
        sw.chassis.write32(b + 20, 9); // tag
                                       // key value/mask words left zero = full wildcard.
        sw.chassis.write32(b, 1); // WRITE_SHADOW
        sw.chassis.write32(b, 2); // COMMIT
        assert_eq!(sw.chassis.read32(b + 24 * 4), 1, "version");
        sw.chassis.send(1, udp_frame(80));
        sw.chassis.run_for(Time::from_us(10));
        assert_eq!(sw.chassis.recv(2).len(), 1);
        assert_eq!(sw.chassis.read32(b + 25 * 4), 1, "packets");
    }

    #[test]
    fn per_rule_hit_counters() {
        let mut p = MatchActionPipeline::new(1, 8);
        let web = p.write_direct(
            0,
            TcamEntry {
                key: FlowKeyBuilder::new().l4_dst(80).build(),
                priority: 5,
                value: output(PortMask::single(1), 1),
            },
        );
        assert!(web);
        p.write_direct(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 0,
                value: output(PortMask::single(2), 1),
            },
        );
        for _ in 0..3 {
            p.classify(&flow_key(&udp_frame(80), &Meta::default()));
        }
        p.classify(&flow_key(&udp_frame(443), &Meta::default()));
        assert_eq!(p.rule_hits(0, 0), 3, "web rule");
        assert_eq!(p.rule_hits(0, 1), 1, "catch-all");
        // Commit flips banks: shadow counters start clean.
        p.clear_shadow();
        p.commit();
        assert_eq!(p.rule_hits(0, 0), 0);
    }

    #[test]
    fn flow_stats_via_registers() {
        let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 1, 64);
        sw.pipeline.borrow_mut().write_direct(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 0,
                value: output(PortMask::single(1), 1),
            },
        );
        for _ in 0..4 {
            sw.chassis.send(0, udp_frame(80));
        }
        sw.chassis.run_for(Time::from_us(20));
        let b = BLUESWITCH_BASE;
        sw.chassis.write32(b + 4, 0); // table 0
        sw.chassis.write32(b + 24, 0); // slot 0 (word 6)
        assert_eq!(sw.chassis.read32(b + 28 * 4), 4, "rule hit counter");
    }

    #[test]
    fn resource_cost() {
        assert!(BlueSwitch::resource_cost(4, 4).fits(&BoardSpec::sume().resources));
    }

    /// The flattened fault-injection index space addresses every bank of
    /// every table: `(table * 2 + bank) * capacity + slot`.
    #[test]
    fn flattened_tcam_upset_space_covers_all_banks() {
        use netfpga_faults::FaultableMemory;
        let mut p = MatchActionPipeline::new(2, 16);
        assert_eq!(FaultableMemory::entries(&p), 2 * 2 * 16);
        assert_eq!(p.bits_per_entry(), 2 * KEY_WIDTH * 8);
        // Empty slots and out-of-range indices are harmless upsets.
        assert!(!p.flip_bit(0, 0));
        assert!(!p.flip_bit(2 * 2 * 16, 0));
        // Table 1, active bank (0), slot 0 is flat index (1*2 + 0)*16.
        p.write_direct(
            1,
            TcamEntry {
                key: FlowKeyBuilder::new().in_port(0).build(),
                priority: 1,
                value: output(PortMask::single(2), 1),
            },
        );
        let key = flow_key(&udp_frame(80), &Meta::default());
        assert_eq!(p.classify(&key).matched.len(), 1);
        // Bit 0 is value-plane byte 0 — the in_port match byte: the rule
        // now wants in_port 1 and the lookup misses.
        assert!(p.flip_bit(32, 0));
        assert!(p.classify(&key).matched.is_empty(), "corrupted key misses");
        assert!(p.flip_bit(32, 0), "flip back repairs");
        assert_eq!(p.classify(&key).matched.len(), 1);
        // Shadow banks are reachable too: table 0 bank 1 is flat index 16.
        p.write_shadow(
            0,
            TcamEntry {
                key: TernaryKey::wildcard(KEY_WIDTH),
                priority: 0,
                value: output(PortMask::single(1), 2),
            },
        );
        assert!(p.flip_bit(16, 0));
    }
}
