//! The I/O-exercise ("acceptance test") project: every release ships a
//! design whose only job is to drive all the I/O interfaces — each port
//! loops received frames straight back out, with per-port counters and a
//! payload integrity check. Used to validate a board (here: the chassis
//! edge models) before any real project is loaded.

use crate::harness::{Chassis, ChassisIo};
use netfpga_core::board::BoardSpec;
use netfpga_core::regs::AddressMap;
use netfpga_core::resources::ResourceCost;
use netfpga_core::sim::{Module, TickContext};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{StreamRx, StreamTx};
use netfpga_datapath::blocks;

/// Per-port loopback with counters and a running checksum of payloads.
struct PortLoop {
    name: String,
    rx: StreamRx,
    tx: StreamTx,
    frames: Counter,
    bytes: Counter,
    checksum: Counter,
}

impl Module for PortLoop {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        if !self.tx.can_push() {
            return;
        }
        let Some(word) = self.rx.pop() else { return };
        if word.sop {
            self.frames.incr();
        }
        self.bytes.add(word.len() as u64);
        let sum: u64 = word.bytes().iter().map(|&b| u64::from(b)).sum();
        self.checksum.add(sum);
        self.tx.push(word);
    }
}

/// Per-port observation handles.
#[derive(Debug, Clone)]
pub struct PortCounters {
    /// Frames looped.
    pub frames: Counter,
    /// Bytes looped.
    pub bytes: Counter,
    /// Additive checksum of all payload bytes (integrity spot-check).
    pub checksum: Counter,
}

/// The assembled acceptance project.
pub struct AcceptanceTest {
    /// The board with this project loaded.
    pub chassis: Chassis,
    /// Per-port counters.
    pub counters: Vec<PortCounters>,
}

impl AcceptanceTest {
    /// Build on `spec` with `nports` looped ports.
    pub fn new(spec: &BoardSpec, nports: usize) -> AcceptanceTest {
        let (mut chassis, io) = Chassis::new(spec, nports, AddressMap::new());
        let ChassisIo {
            from_ports,
            to_ports,
        } = io;
        let mut counters = Vec::new();
        for (i, (rx, tx)) in from_ports.into_iter().zip(to_ports).enumerate() {
            let c = PortCounters {
                frames: Counter::new(),
                bytes: Counter::new(),
                checksum: Counter::new(),
            };
            chassis.add_module(PortLoop {
                name: format!("port_loop{i}"),
                rx,
                tx,
                frames: c.frames.clone(),
                bytes: c.bytes.clone(),
                checksum: c.checksum.clone(),
            });
            counters.push(c);
        }
        AcceptanceTest { chassis, counters }
    }

    /// Approximate FPGA cost (experiment E7): MACs, host interface, and a
    /// sliver of glue per port.
    pub fn resource_cost(nports: u64) -> ResourceCost {
        blocks::MAC_10G.times(nports)
            + blocks::PCIE_DMA
            + blocks::REG_INTERCONNECT
            + blocks::STATS_STAGE.times(nports)
    }

    /// Blocks this project instantiates (E7 reuse matrix row).
    pub fn block_names() -> &'static [&'static str] {
        &["mac_10g", "pcie_dma", "reg_interconnect", "stats_stage"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::time::Time;

    #[test]
    fn all_ports_loop_and_count() {
        let mut a = AcceptanceTest::new(&BoardSpec::sume(), 4);
        for p in 0..4 {
            a.chassis.send(p, vec![p as u8 + 1; 100]);
        }
        a.chassis.run_for(Time::from_us(10));
        for p in 0..4 {
            let got = a.chassis.recv(p);
            assert_eq!(got, vec![vec![p as u8 + 1; 100]], "port {p}");
            assert_eq!(a.counters[p].frames.get(), 1);
            assert_eq!(a.counters[p].bytes.get(), 100);
            assert_eq!(a.counters[p].checksum.get(), 100 * (p as u64 + 1));
        }
    }

    #[test]
    fn sustained_traffic_no_loss() {
        let mut a = AcceptanceTest::new(&BoardSpec::sume(), 2);
        let n = 200;
        for _ in 0..n {
            a.chassis.send(0, vec![0x5a; 1500]);
        }
        a.chassis.run_for(Time::from_ms(1));
        assert_eq!(a.counters[0].frames.get(), n);
        assert_eq!(a.chassis.recv(0).len() as u64, n);
        assert_eq!(a.chassis.rx_mac_stats(0).frames, n);
        assert_eq!(a.chassis.tx_mac_stats(0).frames, n);
    }
}
