//! The cross-project inventory: which building blocks each project reuses
//! and what each design costs — the data behind experiment E7 ("by reusing
//! building blocks across projects users can compare design utilization
//! and performance", paper §1).

use crate::{
    acceptance::AcceptanceTest, blueswitch::BlueSwitch, osnt::OsntTester,
    reference_nic::ReferenceNic, reference_router::ReferenceRouter,
    reference_switch::ReferenceSwitch, switch_lite::SwitchLite,
};
use netfpga_core::resources::ResourceCost;
use std::collections::BTreeSet;

/// The canonical project list, in release order.
pub const PROJECTS: [&str; 7] = [
    "acceptance",
    "reference_nic",
    "reference_switch",
    "switch_lite",
    "reference_router",
    "blueswitch",
    "osnt",
];

/// Block list of a project by name.
pub fn blocks_of(project: &str) -> &'static [&'static str] {
    match project {
        "acceptance" => AcceptanceTest::block_names(),
        "reference_nic" => ReferenceNic::block_names(),
        "reference_switch" => ReferenceSwitch::block_names(),
        "switch_lite" => SwitchLite::block_names(),
        "reference_router" => ReferenceRouter::block_names(),
        "blueswitch" => BlueSwitch::block_names(),
        "osnt" => OsntTester::block_names(),
        other => panic!("unknown project '{other}'"),
    }
}

/// Resource cost of a project (4-port configurations).
pub fn cost_of(project: &str) -> ResourceCost {
    match project {
        "acceptance" => AcceptanceTest::resource_cost(4),
        "reference_nic" => ReferenceNic::resource_cost(4),
        "reference_switch" => ReferenceSwitch::resource_cost(4),
        "switch_lite" => SwitchLite::resource_cost(4),
        "reference_router" => ReferenceRouter::resource_cost(4),
        "blueswitch" => BlueSwitch::resource_cost(4, 4),
        "osnt" => OsntTester::resource_cost(4),
        other => panic!("unknown project '{other}'"),
    }
}

/// Every distinct block used by any project, sorted.
pub fn all_blocks() -> Vec<&'static str> {
    let mut set = BTreeSet::new();
    for p in PROJECTS {
        set.extend(blocks_of(p).iter().copied());
    }
    set.into_iter().collect()
}

/// For each block, how many projects instantiate it — the reuse measure.
pub fn reuse_counts() -> Vec<(&'static str, usize)> {
    all_blocks()
        .into_iter()
        .map(|b| {
            let n = PROJECTS
                .iter()
                .filter(|p| blocks_of(p).contains(&b))
                .count();
            (b, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::board::BoardSpec;

    #[test]
    fn every_project_has_blocks_and_cost() {
        for p in PROJECTS {
            assert!(!blocks_of(p).is_empty(), "{p}");
            let c = cost_of(p);
            assert!(c.luts > 0, "{p}");
            assert!(c.fits(&BoardSpec::sume().resources), "{p} must fit SUME");
        }
    }

    /// The platform blocks (MAC, registers) are reused by every project,
    /// and the PCIe/DMA core by everything that has a host path — the
    /// reuse claim of §1.
    #[test]
    fn platform_blocks_fully_reused() {
        let counts = reuse_counts();
        let get = |block: &str| counts.iter().find(|(b, _)| *b == block).unwrap().1;
        for block in ["mac_10g", "reg_interconnect"] {
            assert_eq!(get(block), PROJECTS.len(), "{block} reused everywhere");
        }
        // switch_lite deliberately drops the host datapath.
        assert_eq!(get("pcie_dma"), PROJECTS.len() - 1);
    }

    /// Lookup cores are shared only where designs genuinely share logic:
    /// the learning lookup serves both switches; the rest are unique.
    #[test]
    fn lookups_are_project_specific() {
        let counts = reuse_counts();
        let get = |block: &str| counts.iter().find(|(b, _)| *b == block).unwrap().1;
        assert_eq!(get("switch_lookup"), 2, "full switch + switch_lite");
        for block in ["nic_lookup", "router_lookup", "match_action_table"] {
            assert_eq!(get(block), 1, "{block}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown project")]
    fn unknown_project_panics() {
        let _ = blocks_of("nonexistent");
    }
}
