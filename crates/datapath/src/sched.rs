//! Packet schedulers for the output-queue stage — the E4 ablation set.
//!
//! The paper's §3 example researcher "adds a new scheduling module to the
//! existing reference router design"; this module is where they would add
//! it. A [`Scheduler`] picks which class queue of an output port sends
//! next; implementations provided: [`Fifo`], [`RoundRobin`],
//! [`DeficitRoundRobin`], [`StrictPriority`] and [`WeightedFair`].

/// Read-only view of one class queue offered to the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct QueueView {
    /// Packets waiting.
    pub packets: usize,
    /// Size of the head packet in bytes (`None` if empty).
    pub head_bytes: Option<usize>,
}

/// A work-conserving packet scheduler over a fixed set of class queues.
pub trait Scheduler {
    /// Pick the queue to dequeue from, or `None` if all are empty. Must not
    /// return an empty queue.
    fn select(&mut self, queues: &[QueueView]) -> Option<usize>;

    /// Informs the scheduler that `bytes` were enqueued to `queue` (needed
    /// by virtual-time schedulers).
    fn on_enqueue(&mut self, queue: usize, bytes: usize) {
        let _ = (queue, bytes);
    }

    /// Informs the scheduler that the head of `queue` (of `bytes` bytes)
    /// was dequeued.
    fn on_dequeue(&mut self, queue: usize, bytes: usize) {
        let _ = (queue, bytes);
    }

    /// True if the scheduler's decisions depend only on enqueue/dequeue
    /// events, never on wall-clock time. Event-driven schedulers (all the
    /// ones here) let the owning stage report quiescent to the simulator
    /// when its queues are empty, enabling idle fast-forward. A shaper that
    /// releases packets on a timer must return `false`.
    fn event_driven(&self) -> bool {
        true
    }

    /// Stable name for reports.
    fn name(&self) -> &'static str;
}

fn first_nonempty(queues: &[QueueView]) -> Option<usize> {
    queues.iter().position(|q| q.packets > 0)
}

/// Single-queue FIFO semantics: always serves the lowest-indexed non-empty
/// queue. With one class configured this is plain FIFO; with several it
/// degenerates to strict order of class index (which is the point of the
/// ablation baseline).
#[derive(Debug, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn select(&mut self, queues: &[QueueView]) -> Option<usize> {
        first_nonempty(queues)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Packet-granular round robin: one packet per non-empty queue per turn,
/// regardless of packet size (large-packet flows get more bytes).
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn select(&mut self, queues: &[QueueView]) -> Option<usize> {
        let n = queues.len();
        (0..n)
            .map(|k| (self.next + k) % n)
            .find(|&i| queues[i].packets > 0)
    }

    fn on_dequeue(&mut self, queue: usize, _bytes: usize) {
        self.next = queue + 1;
    }

    fn name(&self) -> &'static str {
        "rr"
    }
}

/// Deficit round robin (Shreedhar & Varghese): byte-fair regardless of
/// packet size mix.
#[derive(Debug)]
pub struct DeficitRoundRobin {
    quantum: usize,
    deficit: Vec<usize>,
    current: usize,
    /// Whether the current queue still needs its quantum for this visit.
    needs_quantum: bool,
}

impl DeficitRoundRobin {
    /// Create with a per-round byte quantum (use at least the MTU so every
    /// packet can eventually be served).
    pub fn new(queues: usize, quantum: usize) -> DeficitRoundRobin {
        assert!(queues > 0 && quantum > 0);
        DeficitRoundRobin {
            quantum,
            deficit: vec![0; queues],
            current: 0,
            needs_quantum: true,
        }
    }
}

impl Scheduler for DeficitRoundRobin {
    fn select(&mut self, queues: &[QueueView]) -> Option<usize> {
        assert_eq!(queues.len(), self.deficit.len());
        if queues.iter().all(|q| q.packets == 0) {
            return None;
        }
        // At most 2N advances: each queue gets at most one quantum grant
        // per select() round, which is enough because quantum >= 1 byte
        // accrues every pass and some queue is non-empty.
        for _ in 0..(2 * queues.len() * (1 + self.quantum)) {
            let i = self.current;
            if queues[i].packets == 0 {
                // Empty queues lose their deficit (classic DRR).
                self.deficit[i] = 0;
                self.current = (i + 1) % queues.len();
                self.needs_quantum = true;
                continue;
            }
            if self.needs_quantum {
                self.deficit[i] += self.quantum;
                self.needs_quantum = false;
            }
            let head = queues[i].head_bytes.expect("non-empty queue has a head");
            if self.deficit[i] >= head {
                return Some(i);
            }
            self.current = (i + 1) % queues.len();
            self.needs_quantum = true;
        }
        unreachable!("DRR failed to converge");
    }

    fn on_dequeue(&mut self, queue: usize, bytes: usize) {
        self.deficit[queue] = self.deficit[queue].saturating_sub(bytes);
    }

    fn name(&self) -> &'static str {
        "drr"
    }
}

/// Strict priority: queue 0 is highest; lower classes starve under load.
#[derive(Debug, Default)]
pub struct StrictPriority;

impl Scheduler for StrictPriority {
    fn select(&mut self, queues: &[QueueView]) -> Option<usize> {
        first_nonempty(queues)
    }

    fn name(&self) -> &'static str {
        "strict"
    }
}

/// Weighted fair queueing via per-packet virtual finish times (a start-time
/// fair approximation: V advances with served bytes).
#[derive(Debug)]
pub struct WeightedFair {
    weights: Vec<f64>,
    /// Virtual finish time of each queued packet, per queue.
    tags: Vec<std::collections::VecDeque<f64>>,
    /// Last assigned finish tag per queue.
    last_tag: Vec<f64>,
    /// Virtual time: total weighted service so far.
    vtime: f64,
}

impl WeightedFair {
    /// Create with per-queue weights (must be positive).
    pub fn new(weights: Vec<f64>) -> WeightedFair {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let n = weights.len();
        WeightedFair {
            weights,
            tags: vec![std::collections::VecDeque::new(); n],
            last_tag: vec![0.0; n],
            vtime: 0.0,
        }
    }

    /// Equal weights for `n` queues.
    pub fn equal(n: usize) -> WeightedFair {
        WeightedFair::new(vec![1.0; n])
    }
}

impl Scheduler for WeightedFair {
    fn select(&mut self, queues: &[QueueView]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, q) in queues.iter().enumerate() {
            if q.packets == 0 {
                continue;
            }
            let tag = self.tags[i].front().copied().unwrap_or(f64::INFINITY);
            if best.is_none_or(|(_, b)| tag < b) {
                best = Some((i, tag));
            }
        }
        best.map(|(i, _)| i)
    }

    fn on_enqueue(&mut self, queue: usize, bytes: usize) {
        let start = self.vtime.max(self.last_tag[queue]);
        let finish = start + bytes as f64 / self.weights[queue];
        self.last_tag[queue] = finish;
        self.tags[queue].push_back(finish);
    }

    fn on_dequeue(&mut self, queue: usize, bytes: usize) {
        if let Some(tag) = self.tags[queue].pop_front() {
            // Advance virtual time to the served packet's finish tag; this
            // keeps V monotone and roughly tracking the fluid system.
            self.vtime = self.vtime.max(tag);
        }
        let _ = bytes;
    }

    fn name(&self) -> &'static str {
        "wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drive a scheduler against in-memory queues; returns per-queue served
    /// byte totals after `rounds` dequeues.
    fn serve(
        sched: &mut dyn Scheduler,
        mut queues: Vec<VecDeque<usize>>,
        rounds: usize,
    ) -> Vec<usize> {
        // Register pre-existing contents.
        for (i, q) in queues.iter().enumerate() {
            for &b in q {
                sched.on_enqueue(i, b);
            }
        }
        let mut served = vec![0usize; queues.len()];
        for _ in 0..rounds {
            let views: Vec<QueueView> = queues
                .iter()
                .map(|q| QueueView {
                    packets: q.len(),
                    head_bytes: q.front().copied(),
                })
                .collect();
            let Some(i) = sched.select(&views) else { break };
            let bytes = queues[i].pop_front().expect("scheduler picked empty queue");
            sched.on_dequeue(i, bytes);
            served[i] += bytes;
        }
        served
    }

    fn backlog(sizes: &[usize], count: usize) -> Vec<VecDeque<usize>> {
        sizes
            .iter()
            .map(|&s| std::iter::repeat_n(s, count).collect())
            .collect()
    }

    #[test]
    fn fifo_serves_lowest_class_first() {
        let mut s = Fifo;
        let served = serve(&mut s, backlog(&[100, 100], 10), 10);
        assert_eq!(served, vec![1000, 0]);
    }

    #[test]
    fn rr_alternates_packets() {
        let mut s = RoundRobin::default();
        // Queue 0 has big packets, queue 1 small: RR is packet-fair, so
        // byte totals diverge by the size ratio.
        let served = serve(&mut s, backlog(&[1000, 100], 10), 20);
        assert_eq!(served, vec![10_000, 1_000]);
    }

    #[test]
    fn drr_is_byte_fair_with_mixed_sizes() {
        let mut s = DeficitRoundRobin::new(2, 1500);
        // 1500-byte packets vs 100-byte packets, heavy backlog.
        let served = serve(&mut s, backlog(&[1500, 100], 200), 200);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.15, "byte ratio {ratio}");
    }

    #[test]
    fn drr_skips_empty_queues_without_stall() {
        let mut s = DeficitRoundRobin::new(3, 500);
        let queues = vec![
            VecDeque::from(vec![400usize; 5]),
            VecDeque::new(),
            VecDeque::from(vec![400usize; 5]),
        ];
        let served = serve(&mut s, queues, 10);
        assert_eq!(served, vec![2000, 0, 2000]);
    }

    #[test]
    fn strict_priority_starves_low_classes() {
        let mut s = StrictPriority;
        let served = serve(&mut s, backlog(&[100, 100, 100], 50), 50);
        assert_eq!(served, vec![5000, 0, 0]);
    }

    #[test]
    fn wfq_respects_weights() {
        let mut s = WeightedFair::new(vec![3.0, 1.0]);
        let served = serve(&mut s, backlog(&[100, 100], 400), 400);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "weight ratio {ratio}");
    }

    #[test]
    fn wfq_equal_weights_byte_fair_mixed_sizes() {
        let mut s = WeightedFair::equal(2);
        let served = serve(&mut s, backlog(&[1500, 100], 300), 300);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.2, "byte ratio {ratio}");
    }

    #[test]
    fn all_schedulers_work_conserving_and_never_pick_empty() {
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Fifo),
            Box::new(RoundRobin::default()),
            Box::new(DeficitRoundRobin::new(3, 1500)),
            Box::new(StrictPriority),
            Box::new(WeightedFair::equal(3)),
        ];
        for mut s in scheds {
            let queues = vec![
                VecDeque::from(vec![64usize; 3]),
                VecDeque::new(),
                VecDeque::from(vec![1500usize; 2]),
            ];
            let total: usize = queues.iter().map(|q| q.len()).sum();
            // serve() panics internally if an empty queue is picked.
            let served = serve(&mut *s, queues, total + 5);
            let served_total: usize = served.iter().sum();
            assert_eq!(
                served_total,
                3 * 64 + 2 * 1500,
                "{} did not drain all queues",
                s.name()
            );
        }
    }

    #[test]
    fn empty_system_returns_none() {
        let views = [QueueView {
            packets: 0,
            head_bytes: None,
        }; 2];
        assert!(Fifo.select(&views).is_none());
        assert!(RoundRobin::default().select(&views).is_none());
        assert!(DeficitRoundRobin::new(2, 100).select(&views).is_none());
        assert!(StrictPriority.select(&views).is_none());
        assert!(WeightedFair::equal(2).select(&views).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn wfq_rejects_zero_weight() {
        let _ = WeightedFair::new(vec![1.0, 0.0]);
    }
}
