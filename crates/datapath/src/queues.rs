//! The output-queues stage: per-port class queues with pluggable
//! scheduling — the last stage of every reference pipeline.
//!
//! Packets arrive on one stream with a destination port mask in their
//! metadata (filled by the lookup stage). Each destination port has a set
//! of class queues (byte-budgeted, tail-drop) and an egress stream drained
//! one word per cycle. Multicast masks copy the packet into each listed
//! port. A [`Scheduler`] picks the class to serve whenever a port goes
//! idle; the classifier maps (packet, meta) to a class index.

use crate::sched::{QueueView, Scheduler};
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{segment_buf, Meta, Reassembler, StreamRx, StreamTx, Word};
use netfpga_mem::ByteFifo;
use std::collections::VecDeque;

/// Classifies a packet into a class-queue index.
pub type Classifier = Box<dyn FnMut(&[u8], &Meta) -> usize>;

/// Configuration of the stage.
pub struct QueueConfig {
    /// Class queues per output port.
    pub classes: usize,
    /// Byte capacity of each class queue.
    pub bytes_per_queue: usize,
    /// Class picker; default sends everything to class 0.
    pub classifier: Classifier,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            classes: 1,
            bytes_per_queue: 512 * 1024,
            classifier: Box::new(|_, _| 0),
        }
    }
}

/// Per-stage counters (a point-in-time snapshot; the live values are
/// shared [`Counter`] cells the telemetry plane also reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutputQueueStats {
    /// Packets admitted across all queues (multicast copies count).
    pub enqueued: u64,
    /// Packets sent.
    pub dequeued: u64,
    /// Packets tail-dropped.
    pub dropped: u64,
    /// Packets whose destination mask was empty (discarded).
    pub no_destination: u64,
}

/// The live shared cells behind [`OutputQueueStats`].
#[derive(Debug, Clone, Default)]
struct QueueCounters {
    enqueued: Counter,
    dequeued: Counter,
    dropped: Counter,
    no_destination: Counter,
}

struct PortState {
    queues: Vec<ByteFifo<(PktBuf, Meta)>>,
    scheduler: Box<dyn Scheduler>,
    emitting: VecDeque<Word>,
    /// Scratch buffer for scheduler views, reused across ticks so the
    /// egress path allocates nothing in steady state.
    views: Vec<QueueView>,
    /// Live per-class depth cells (packets queued), kept current at every
    /// enqueue/dequeue so telemetry gauges and the flow-monitor exporter
    /// read depths without touching the stage.
    depths: Vec<Counter>,
}

/// The 1-to-N output-queue stage. See module docs.
pub struct OutputQueues {
    name: String,
    input: StreamRx,
    outputs: Vec<StreamTx>,
    ports: Vec<PortState>,
    classifier: Classifier,
    reasm: Reassembler,
    stats: QueueCounters,
    /// Burst fast path: move every available word per tick instead of one.
    burst: bool,
    /// Activity-cache invalidation flag, registered on the input stream
    /// (the only external channel that can un-idle the stage: with all
    /// queues drained, egress pops cannot change its classification).
    wake: WakeHandle,
}

impl OutputQueues {
    /// Create the stage; `make_scheduler` is invoked once per port so each
    /// port gets an independent scheduler instance.
    pub fn new(
        name: &str,
        input: StreamRx,
        outputs: Vec<StreamTx>,
        config: QueueConfig,
        mut make_scheduler: impl FnMut() -> Box<dyn Scheduler>,
    ) -> OutputQueues {
        assert!(!outputs.is_empty(), "need at least one output port");
        assert!(config.classes > 0);
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        let ports = (0..outputs.len())
            .map(|_| PortState {
                queues: (0..config.classes)
                    .map(|_| ByteFifo::new(config.bytes_per_queue))
                    .collect(),
                scheduler: make_scheduler(),
                emitting: VecDeque::new(),
                views: Vec::with_capacity(config.classes),
                depths: (0..config.classes).map(|_| Counter::new()).collect(),
            })
            .collect();
        OutputQueues {
            name: name.to_string(),
            input,
            outputs,
            ports,
            classifier: config.classifier,
            reasm: Reassembler::new(),
            stats: QueueCounters::default(),
            burst: false,
            wake,
        }
    }

    /// Enable the burst fast path: each tick ingests every buffered input
    /// word and fills each egress stream to capacity, rather than moving
    /// one word per cycle. Egress ordering, scheduling decisions and drops
    /// are unchanged; only the cycle-level pacing is collapsed, so enable
    /// it when throughput matters more than per-cycle timing fidelity.
    pub fn with_burst(mut self, enabled: bool) -> OutputQueues {
        self.burst = enabled;
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> OutputQueueStats {
        OutputQueueStats {
            enqueued: self.stats.enqueued.get(),
            dequeued: self.stats.dequeued.get(),
            dropped: self.stats.dropped.get(),
            no_destination: self.stats.no_destination.get(),
        }
    }

    /// Register the stage's counters on `registry` under `prefix` (e.g.
    /// `oq`): `enqueued`, `dequeued`, `dropped`, `no_destination`. The
    /// shared cells themselves are registered, so registry reads equal
    /// [`OutputQueues::stats`] bit for bit. Call before handing the stage
    /// to the simulator.
    pub fn register_stats(&self, registry: &netfpga_core::telemetry::StatRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.enqueued"), &self.stats.enqueued);
        registry.register_counter(&format!("{prefix}.dequeued"), &self.stats.dequeued);
        registry.register_counter(&format!("{prefix}.dropped"), &self.stats.dropped);
        registry.register_counter(
            &format!("{prefix}.no_destination"),
            &self.stats.no_destination,
        );
    }

    /// Register one depth gauge per (port, class) queue: `portN.qM.depth`
    /// (prefixed with `{prefix}.` when `prefix` is non-empty). Gauges
    /// read the live shared depth cells, so they stay current after the
    /// stage moves into the simulator.
    pub fn register_depth_gauges(
        &self,
        registry: &netfpga_core::telemetry::StatRegistry,
        prefix: &str,
    ) {
        for (p, port) in self.ports.iter().enumerate() {
            for (c, depth) in port.depths.iter().enumerate() {
                let leaf = format!("port{p}.q{c}.depth");
                let path = if prefix.is_empty() {
                    leaf
                } else {
                    format!("{prefix}.{leaf}")
                };
                let cell = depth.clone();
                registry.gauge(&path, move || cell.get());
            }
        }
    }

    /// The live depth cell of a (port, class) queue — what the
    /// flow-monitor exporter samples into its occupancy histograms.
    pub fn depth_cell(&self, port: usize, class: usize) -> Counter {
        self.ports[port].depths[class].clone()
    }

    /// Queue occupancy (packets) of a (port, class) queue.
    pub fn occupancy(&self, port: usize, class: usize) -> usize {
        self.ports[port].queues[class].len()
    }

    /// Drop count of a (port, class) queue.
    pub fn drops(&self, port: usize, class: usize) -> u64 {
        self.ports[port].queues[class].counts().2
    }

    /// Fan a completed packet out to its destination queues. Multicast and
    /// flood copies share one buffer: `packet.clone()` bumps a refcount, no
    /// payload bytes are copied per port.
    fn deliver(&mut self, packet: PktBuf, meta: Meta) {
        if meta.dst_ports.is_empty() {
            self.stats.no_destination.incr();
            return;
        }
        let class = (self.classifier)(&packet, &meta);
        for port in meta.dst_ports.iter() {
            let Some(state) = self.ports.get_mut(usize::from(port)) else {
                continue; // mask names a port this stage lacks
            };
            let class = class.min(state.queues.len() - 1);
            let len = packet.len();
            if state.queues[class].push(len, (packet.clone(), meta)) {
                state.depths[class].set(state.queues[class].len() as u64);
                state.scheduler.on_enqueue(class, len);
                self.stats.enqueued.incr();
            } else {
                self.stats.dropped.incr();
            }
        }
    }

    /// Ask port `i`'s scheduler for the next packet and stage its words for
    /// emission. Returns false when every class queue is empty.
    fn refill_emitting(&mut self, i: usize) -> bool {
        let width = self.outputs[i].width();
        let state = &mut self.ports[i];
        if state.queues.iter().all(|q| q.is_empty()) {
            return false;
        }
        state.views.clear();
        state.views.extend(state.queues.iter().map(|q| QueueView {
            packets: q.len(),
            head_bytes: q.front().map(|(_, len)| len),
        }));
        let Some(class) = state.scheduler.select(&state.views) else {
            return false;
        };
        let (packet, mut meta) = state.queues[class]
            .pop()
            .expect("scheduler picked empty queue");
        state.depths[class].set(state.queues[class].len() as u64);
        state.scheduler.on_dequeue(class, packet.len());
        self.stats.dequeued.incr();
        // Narrow the mask to this port for the egress copy.
        meta.dst_ports = netfpga_core::stream::PortMask::single(i as u8);
        self.ports[i].emitting = segment_buf(&packet, width, meta).into();
        true
    }
}

impl Module for OutputQueues {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        // Ingest one word per cycle (every buffered word in burst mode);
        // on packet completion, fan out.
        while let Some(word) = self.input.pop() {
            if let Some((packet, meta)) = self.reasm.push(word) {
                self.deliver(packet, meta);
            }
            if !self.burst {
                break;
            }
        }

        // Egress: each port independently emits one word per cycle, or
        // drains packets until the egress stream fills in burst mode.
        for i in 0..self.ports.len() {
            loop {
                if self.ports[i].emitting.is_empty() && !self.refill_emitting(i) {
                    break;
                }
                if self.burst {
                    self.outputs[i].push_burst(&mut self.ports[i].emitting);
                    if !self.ports[i].emitting.is_empty() {
                        break; // downstream full: resume next tick
                    }
                } else {
                    if self.outputs[i].can_push() {
                        let word = self.ports[i].emitting.pop_front().expect("refilled above");
                        self.outputs[i].push(word);
                    }
                    break;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.reasm = Reassembler::new();
        self.stats.enqueued.clear();
        self.stats.dequeued.clear();
        self.stats.dropped.clear();
        self.stats.no_destination.clear();
        for p in &mut self.ports {
            for q in &mut p.queues {
                q.clear();
            }
            for d in &p.depths {
                d.clear();
            }
            p.emitting.clear();
        }
    }

    /// Watchdog recovery: discard a partially reassembled arrival (its
    /// tail was flushed upstream, counted as a drop) and any egress frame
    /// already cut short mid-emission (the MAC downstream resyncs). Queued
    /// complete packets, counters and scheduler configuration survive —
    /// that is the difference from [`Module::reset`].
    fn soft_reset(&mut self) {
        if self.reasm.resync() {
            self.stats.dropped.incr();
        }
        for p in &mut self.ports {
            if p.emitting.front().is_some_and(|w| !w.sop) {
                p.emitting.clear();
            }
        }
    }

    /// Idle when nothing is buffered anywhere and every scheduler is
    /// event-driven: the next effect can only come from new input.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop()
            && self.ports.iter().all(|p| {
                p.emitting.is_empty()
                    && p.scheduler.event_driven()
                    && p.queues.iter().all(|q| q.is_empty())
            })
    }

    /// Only new input can un-idle the stage: a quiescent stage has nothing
    /// buffered, so egress-side pops cannot change its classification.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Fifo, StrictPriority, WeightedFair};
    use netfpga_core::packetio::{CaptureBuffer, InjectQueue, PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::{PortMask, Stream};
    use netfpga_core::time::{Frequency, Time};

    struct Rig {
        sim: Simulator,
        inject: InjectQueue,
        captures: Vec<CaptureBuffer>,
    }

    fn rig(nports: usize, config: QueueConfig, mk: impl FnMut() -> Box<dyn Scheduler>) -> Rig {
        rig_with_sink_clock(nports, config, mk, Frequency::mhz(200))
    }

    /// A rig whose sinks run on their own (possibly slower) clock: with a
    /// slow sink, egress back-pressure builds queue inside the stage, which
    /// is what the scheduler and drop tests need.
    fn rig_with_sink_clock(
        nports: usize,
        config: QueueConfig,
        mk: impl FnMut() -> Box<dyn Scheduler>,
        sink_clock: Frequency,
    ) -> Rig {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let slow = sim.add_clock("sink", sink_clock);
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        sim.add_module(clk, src);
        let mut out_txs = Vec::new();
        let mut captures = Vec::new();
        let mut sinks = Vec::new();
        for p in 0..nports {
            let (tx, rx) = Stream::new(8, 32);
            let (sink, cap) = PacketSink::new(&format!("sink{p}"), rx);
            out_txs.push(tx);
            captures.push(cap);
            sinks.push(sink);
        }
        let oq = OutputQueues::new("oq", in_rx, out_txs, config, mk);
        sim.add_module(clk, oq);
        for s in sinks {
            sim.add_module(slow, s);
        }
        Rig {
            sim,
            inject,
            captures,
        }
    }

    fn meta_to(ports: PortMask, src: u8, len: usize) -> Meta {
        Meta {
            len: len as u16,
            src_port: src,
            dst_ports: ports,
            ..Meta::default()
        }
    }

    #[test]
    fn unicast_reaches_only_target_port() {
        let mut r = rig(4, QueueConfig::default(), || Box::new(Fifo));
        let pkt = vec![5u8; 100];
        r.inject
            .push_with_meta(pkt.clone(), meta_to(PortMask::single(2), 0, 100));
        r.sim.run_until(Time::from_us(5));
        assert_eq!(r.captures[2].total_packets(), 1);
        assert_eq!(r.captures[2].pop().unwrap().data, pkt);
        for p in [0usize, 1, 3] {
            assert_eq!(r.captures[p].total_packets(), 0, "port {p}");
        }
    }

    #[test]
    fn multicast_copies_to_each_port() {
        let mut r = rig(4, QueueConfig::default(), || Box::new(Fifo));
        let mut mask = PortMask::EMPTY;
        mask.insert(0);
        mask.insert(3);
        r.inject.push_with_meta(vec![7u8; 64], meta_to(mask, 1, 64));
        r.sim.run_until(Time::from_us(5));
        assert_eq!(r.captures[0].total_packets(), 1);
        assert_eq!(r.captures[3].total_packets(), 1);
        assert_eq!(r.captures[1].total_packets(), 0);
        // Egress copies carry the single egress port in their mask.
        assert!(r.captures[0].pop().unwrap().meta.dst_ports.contains(0));
    }

    #[test]
    fn empty_mask_discarded() {
        let mut r = rig(2, QueueConfig::default(), || Box::new(Fifo));
        r.inject
            .push_with_meta(vec![1u8; 64], meta_to(PortMask::EMPTY, 0, 64));
        r.sim.run_until(Time::from_us(2));
        assert_eq!(r.captures[0].total_packets(), 0);
        assert_eq!(r.captures[1].total_packets(), 0);
    }

    #[test]
    fn tail_drop_on_overflow() {
        let config = QueueConfig {
            classes: 1,
            bytes_per_queue: 300, // room for ~2 x 128-byte packets
            classifier: Box::new(|_, _| 0),
        };
        let mut r = rig_with_sink_clock(1, config, || Box::new(Fifo), Frequency::mhz(2));
        for _ in 0..10 {
            r.inject
                .push_with_meta(vec![0u8; 128], meta_to(PortMask::single(0), 0, 128));
        }
        r.sim.run_until(Time::from_us(100));
        // Everything that was admitted must eventually egress; drops are
        // whatever could not be buffered while egress was busy.
        let egressed = r.captures[0].total_packets();
        assert!(egressed >= 2, "at least the buffered ones: {egressed}");
        assert!(egressed < 10, "overflow must drop some");
    }

    #[test]
    fn strict_priority_ordering_across_classes() {
        // Class by first payload byte; class 0 = high priority.
        let config = QueueConfig {
            classes: 2,
            bytes_per_queue: 1 << 20,
            classifier: Box::new(|p: &[u8], _| usize::from(p[0] & 1)),
        };
        let mut r = rig_with_sink_clock(1, config, || Box::new(StrictPriority), Frequency::mhz(5));
        // Fill with low-priority (odd) then a burst of high-priority.
        for _ in 0..20 {
            r.inject
                .push_with_meta(vec![1u8; 256], meta_to(PortMask::single(0), 0, 256));
        }
        for _ in 0..5 {
            r.inject
                .push_with_meta(vec![2u8; 256], meta_to(PortMask::single(0), 0, 256));
        }
        r.sim.run_until(Time::from_us(500));
        let order: Vec<u8> = r.captures[0].drain().iter().map(|c| c.data[0]).collect();
        assert_eq!(order.len(), 25);
        // All 5 high-priority packets must egress before the last
        // low-priority one.
        let last_high = order.iter().rposition(|&b| b == 2).unwrap();
        let served_low_before = order[..last_high].iter().filter(|&&b| b == 1).count();
        assert!(
            served_low_before < 20,
            "high priority overtook the low backlog ({served_low_before})"
        );
    }

    #[test]
    fn wfq_shares_port_bandwidth_by_weight() {
        let config = QueueConfig {
            classes: 2,
            bytes_per_queue: 1 << 20,
            classifier: Box::new(|p: &[u8], _| usize::from(p[0] & 1)),
        };
        let mut r = rig_with_sink_clock(
            1,
            config,
            || Box::new(WeightedFair::new(vec![3.0, 1.0])),
            Frequency::mhz(5),
        );
        for _ in 0..100 {
            r.inject
                .push_with_meta(vec![0u8; 200], meta_to(PortMask::single(0), 0, 200));
            r.inject
                .push_with_meta(vec![1u8; 200], meta_to(PortMask::single(0), 0, 200));
        }
        // Sample while the port is still backlogged: stop after 80 packets
        // have egressed, well before either class's 100-packet queue can
        // empty, so both classes compete the entire time.
        let done = {
            let cap = r.captures[0].clone();
            r.sim
                .run_while(Time::from_ms(10), move || cap.total_packets() < 80)
        };
        assert!(done);
        let counts = r.captures[0]
            .drain()
            .iter()
            .fold([0usize; 2], |mut acc, c| {
                acc[usize::from(c.data[0] & 1)] += 1;
                acc
            });
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "ratio {ratio} counts {counts:?}"
        );
    }

    #[test]
    fn depth_gauges_track_queue_occupancy() {
        let registry = netfpga_core::telemetry::StatRegistry::new();
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, _out_rx) = Stream::new(8, 32);
        let config = QueueConfig {
            classes: 2,
            ..QueueConfig::default()
        };
        let mut oq = OutputQueues::new("oq", in_rx, vec![out_tx], config, || Box::new(Fifo));
        oq.register_depth_gauges(&registry, "");
        assert_eq!(registry.get("port0.q0.depth"), Some(0));
        assert_eq!(registry.get("port0.q1.depth"), Some(0));
        let depth = oq.depth_cell(0, 0);
        // Deliver two packets straight into class 0; egress hasn't run.
        for _ in 0..2 {
            oq.deliver(
                PktBuf::copy_from(&[0u8; 64]),
                meta_to(PortMask::single(0), 0, 64),
            );
        }
        assert_eq!(registry.get("port0.q0.depth"), Some(2));
        assert_eq!(depth.get(), 2, "cell and gauge agree");
        // Draining one packet drops the depth.
        assert!(oq.refill_emitting(0));
        assert_eq!(registry.get("port0.q0.depth"), Some(1));
        oq.reset();
        assert_eq!(registry.get("port0.q0.depth"), Some(0));
        drop(in_tx);
    }

    #[test]
    fn ports_drain_independently() {
        let mut r = rig(2, QueueConfig::default(), || Box::new(Fifo));
        for _ in 0..10 {
            r.inject
                .push_with_meta(vec![0u8; 512], meta_to(PortMask::single(0), 0, 512));
            r.inject
                .push_with_meta(vec![1u8; 512], meta_to(PortMask::single(1), 0, 512));
        }
        r.sim.run_until(Time::from_us(30));
        assert_eq!(r.captures[0].total_packets(), 10);
        assert_eq!(r.captures[1].total_packets(), 10);
    }
}
