//! The MAC-learning core of the reference switch: learn source addresses,
//! forward to the learned port, flood unknowns — 802.1D behaviour over the
//! [`AgingTable`] substrate.

use crate::parser::ParsedHeaders;
use netfpga_core::stream::{Meta, PortMask};
use netfpga_core::time::Time;
use netfpga_mem::AgingTable;
use netfpga_packet::EthernetAddress;

/// Learning/forwarding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Lookups that found the destination (unicast forward).
    pub hits: u64,
    /// Lookups that flooded (unknown destination or broadcast/multicast).
    pub floods: u64,
    /// Source addresses learned or refreshed.
    pub learned: u64,
    /// Learning failures (table pressure).
    pub learn_failures: u64,
}

/// The learning switch decision core. Not a stream module itself — the
/// reference switch wraps it in a [`PacketStage`](crate::stage::PacketStage).
pub struct LearningSwitchCore {
    table: AgingTable<u64, u8>,
    nports: u8,
    stats: LearnStats,
}

impl LearningSwitchCore {
    /// A core for `nports` ports with `capacity` table slots and the given
    /// aging interval.
    pub fn new(nports: u8, capacity: usize, age_limit: Time) -> LearningSwitchCore {
        assert!(nports >= 1);
        LearningSwitchCore {
            table: AgingTable::new(capacity, age_limit),
            nports,
            stats: LearnStats::default(),
        }
    }

    /// Process one packet: learn the source, decide the output mask.
    /// Returns the destination port mask (never includes the ingress port).
    pub fn forward(&mut self, frame: &[u8], meta: &Meta, now: Time) -> PortMask {
        let headers = ParsedHeaders::parse(frame);
        self.decide(headers.eth_src, headers.eth_dst, meta.src_port, now)
    }

    /// The decision on already-parsed addresses.
    pub fn decide(
        &mut self,
        src: EthernetAddress,
        dst: EthernetAddress,
        in_port: u8,
        now: Time,
    ) -> PortMask {
        // Learn/refresh the source (unicast sources only, per 802.1D).
        if src.is_unicast() {
            if self.table.insert(src.to_u64(), in_port, now) {
                self.stats.learned += 1;
            } else {
                self.stats.learn_failures += 1;
            }
        }
        // Forward decision.
        let mut mask = if dst.is_unicast() {
            match self.table.lookup(&dst.to_u64(), now) {
                Some(port) => {
                    self.stats.hits += 1;
                    PortMask::single(port)
                }
                None => {
                    self.stats.floods += 1;
                    PortMask::first_n(self.nports)
                }
            }
        } else {
            self.stats.floods += 1;
            PortMask::first_n(self.nports)
        };
        // Never reflect back out the ingress port.
        mask.remove(in_port);
        mask
    }

    /// Counters so far.
    pub fn stats(&self) -> LearnStats {
        self.stats
    }

    /// Register a shared core's counters on `registry` as gauges under
    /// `prefix` (e.g. `lookup`): `hits`, `floods`, `learned`,
    /// `learn_failures`. Takes the `Rc<RefCell<…>>` the reference designs
    /// already share between the pipeline stage and their register blocks,
    /// so registry reads equal [`LearningSwitchCore::stats`] bit for bit.
    pub fn register_stats(
        core: &std::rc::Rc<std::cell::RefCell<LearningSwitchCore>>,
        registry: &netfpga_core::telemetry::StatRegistry,
        prefix: &str,
    ) {
        type Field = fn(&LearnStats) -> u64;
        let fields: [(&str, Field); 4] = [
            ("hits", |s| s.hits),
            ("floods", |s| s.floods),
            ("learned", |s| s.learned),
            ("learn_failures", |s| s.learn_failures),
        ];
        for (name, field) in fields {
            let core = core.clone();
            registry.gauge(&format!("{prefix}.{name}"), move || {
                field(&core.borrow().stats)
            });
        }
    }

    /// Live table entries at `now`.
    pub fn table_size(&self, now: Time) -> usize {
        self.table.live_entries(now)
    }

    /// Flush the table (management operation).
    pub fn flush(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn core() -> LearningSwitchCore {
        LearningSwitchCore::new(4, 1024, Time::from_ms(100))
    }

    #[test]
    fn unknown_floods_except_ingress() {
        let mut c = core();
        let mask = c.decide(mac(1), mac(2), 0, Time::ZERO);
        assert!(!mask.contains(0), "no reflection");
        assert!(mask.contains(1) && mask.contains(2) && mask.contains(3));
        assert_eq!(c.stats().floods, 1);
    }

    #[test]
    fn learned_destination_unicasts() {
        let mut c = core();
        // A talks from port 0; B replies from port 2.
        c.decide(mac(1), mac(2), 0, Time::ZERO);
        let mask = c.decide(mac(2), mac(1), 2, Time::from_us(1));
        assert_eq!(mask, PortMask::single(0), "B->A goes straight to port 0");
        let mask = c.decide(mac(1), mac(2), 0, Time::from_us(2));
        assert_eq!(mask, PortMask::single(2), "A->B now unicast too");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn station_move_relearns() {
        let mut c = core();
        c.decide(mac(1), mac(9), 0, Time::ZERO);
        // Station 1 moves to port 3.
        c.decide(mac(1), mac(9), 3, Time::from_us(5));
        let mask = c.decide(mac(2), mac(1), 1, Time::from_us(6));
        assert_eq!(mask, PortMask::single(3));
    }

    #[test]
    fn broadcast_always_floods() {
        let mut c = core();
        c.decide(mac(1), mac(2), 0, Time::ZERO);
        let mask = c.decide(mac(1), EthernetAddress::BROADCAST, 0, Time::from_us(1));
        assert_eq!(mask, {
            let mut m = PortMask::first_n(4);
            m.remove(0);
            m
        });
    }

    #[test]
    fn entries_age_out() {
        let mut c = LearningSwitchCore::new(4, 64, Time::from_us(10));
        c.decide(mac(1), mac(9), 0, Time::ZERO);
        assert_eq!(c.table_size(Time::from_us(5)), 1);
        // Well past aging: unknown again -> flood.
        let mask = c.decide(mac(2), mac(1), 1, Time::from_ms(1));
        assert!(mask.contains(0) && mask.contains(2) && mask.contains(3));
    }

    #[test]
    fn flush_forgets() {
        let mut c = core();
        c.decide(mac(1), mac(9), 0, Time::ZERO);
        c.flush();
        assert_eq!(c.table_size(Time::ZERO), 0);
        let mask = c.decide(mac(2), mac(1), 1, Time::from_us(1));
        assert!(mask.count() > 1, "flooded after flush");
    }

    #[test]
    fn multicast_source_not_learned() {
        let mut c = core();
        let mcast = EthernetAddress::new(0x01, 0, 0x5e, 0, 0, 5);
        c.decide(mcast, mac(1), 0, Time::ZERO);
        assert_eq!(c.table_size(Time::ZERO), 0);
    }

    #[test]
    fn forward_parses_real_frames() {
        let mut c = core();
        let frame = netfpga_packet::PacketBuilder::new()
            .eth(mac(1), mac(2))
            .raw(netfpga_packet::EtherType::Ipv4, &[0u8; 30])
            .build();
        let meta = Meta {
            src_port: 1,
            ..Meta::default()
        };
        let mask = c.forward(&frame, &meta, Time::ZERO);
        assert!(!mask.contains(1));
        assert_eq!(c.table_size(Time::ZERO), 1);
    }
}
