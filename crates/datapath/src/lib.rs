//! # netfpga-datapath
//!
//! The NetFPGA building-block library: the modular stages that reference
//! and contributed projects wire together (paper §3 — "hardware and
//! software components are provided as flexible building blocks, that can
//! be modified and replaced without affecting other parts of the design").
//!
//! Every block speaks the AXI4-Stream model of `netfpga-core`: words in,
//! words out, back-pressure through bounded channels, `tuser` metadata on
//! the first word of each packet. The canonical reference pipeline is
//!
//! ```text
//! rx_queues -> input_arbiter -> output_port_lookup -> output_queues -> tx
//! ```
//!
//! Blocks provided:
//!
//! * [`arbiter::InputArbiter`] — N-to-1 packet-granular round-robin merge.
//! * [`stage::PacketStage`] — the store-and-forward "output port lookup"
//!   shell: a packet function (inspect/rewrite packet + metadata) with a
//!   configurable pipeline latency; projects drop their lookup logic in.
//! * [`queues::OutputQueues`] — 1-to-N queueing stage with per-port class
//!   queues, byte-budgeted buffering, multicast copy and a pluggable
//!   [`sched::Scheduler`].
//! * [`sched`] — FIFO, round-robin, deficit round-robin, strict-priority
//!   and weighted-fair schedulers (the E4 ablation set).
//! * [`lpm::LpmTable`] — binary-trie longest-prefix-match route table.
//! * [`learn::LearningSwitchCore`] — 802.1D MAC learning over an aging
//!   table.
//! * [`parser::ParsedHeaders`] — the header parser used by lookup stages.
//! * [`ratelimit::RateLimiter`] — token-bucket pacing stage.
//! * [`delay::DelayStage`] — fixed-latency stage (DUT emulation, pipeline
//!   padding).
//! * [`pktstats::StatsStage`] — transparent per-port packet/byte counters.
//! * [`vlan`] — 802.1Q tag push/pop and the VLAN-aware learning core.
//! * [`blocks`] — the resource-cost catalogue for utilization comparisons.

#![deny(missing_docs)]
// Hot-path crate: a redundant clone here is a packet copy the zero-copy
// buffer plane exists to avoid. CI runs clippy with `-D warnings`, so this
// warn is an error there.
#![warn(clippy::redundant_clone)]
#![forbid(unsafe_code)]

pub mod arbiter;
pub mod blocks;
pub mod delay;
pub mod learn;
pub mod lpm;
pub mod parser;
pub mod pktstats;
pub mod queues;
pub mod ratelimit;
pub mod sched;
pub mod stage;
pub mod vlan;

pub use arbiter::InputArbiter;
pub use learn::LearningSwitchCore;
pub use lpm::{LpmTable, RouteEntry};
pub use parser::ParsedHeaders;
pub use queues::{OutputQueues, QueueConfig};
pub use sched::{DeficitRoundRobin, Fifo, RoundRobin, Scheduler, StrictPriority, WeightedFair};
pub use stage::{PacketStage, StageAction};
pub use vlan::VlanSwitchCore;
