//! The input arbiter: merges per-port RX streams into the single datapath
//! stream, round-robin at packet granularity — the first stage of every
//! reference pipeline.

use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stream::{StreamRx, StreamTx};

/// N-to-1 packet-granular round-robin arbiter.
///
/// Once a packet starts, the arbiter stays locked to its input until `eop`
/// (interleaving words of different packets on one stream is illegal AXIS
/// framing). Arbitration is work-conserving: if the current round-robin
/// candidate is idle, the next input with data is picked.
pub struct InputArbiter {
    name: String,
    inputs: Vec<StreamRx>,
    output: StreamTx,
    /// Next input to consider (round-robin pointer).
    next: usize,
    /// Input currently locked mid-packet.
    locked: Option<usize>,
    packets: u64,
    words: u64,
    /// Burst fast path: move every available word per tick instead of one.
    burst: bool,
    /// Activity-cache invalidation flag, registered on every input stream
    /// and on the output (pops free the space a stalled forward waits on).
    wake: WakeHandle,
}

impl InputArbiter {
    /// Create an arbiter over `inputs` feeding `output`.
    pub fn new(name: &str, inputs: Vec<StreamRx>, output: StreamTx) -> InputArbiter {
        assert!(!inputs.is_empty(), "arbiter needs at least one input");
        let wake = WakeHandle::new();
        for rx in &inputs {
            rx.set_wake(wake.clone());
        }
        output.set_wake(wake.clone());
        InputArbiter {
            name: name.to_string(),
            inputs,
            output,
            next: 0,
            locked: None,
            packets: 0,
            words: 0,
            burst: false,
            wake,
        }
    }

    /// Enable the burst fast path: each tick forwards every word it can
    /// (across multiple packets) instead of one word per cycle. Packet
    /// integrity and round-robin fairness at packet granularity are
    /// unchanged; only the cycle-level pacing is collapsed.
    pub fn with_burst(mut self, enabled: bool) -> InputArbiter {
        self.burst = enabled;
        self
    }

    /// Forward words from the locked or round-robin-selected input until
    /// output space, input data or the per-tick word budget runs out.
    /// Returns false when no further progress is possible this tick.
    fn forward_one(&mut self) -> bool {
        if !self.output.can_push() {
            return false;
        }
        // Choose the source: locked input, or next non-empty one.
        let source = match self.locked {
            Some(i) => Some(i),
            None => {
                let n = self.inputs.len();
                (0..n)
                    .map(|k| (self.next + k) % n)
                    .find(|&i| self.inputs[i].can_pop())
            }
        };
        let Some(i) = source else { return false };
        let Some(word) = self.inputs[i].pop() else {
            return false;
        };
        self.words += 1;
        if word.eop {
            self.packets += 1;
            self.locked = None;
            self.next = (i + 1) % self.inputs.len();
        } else {
            self.locked = Some(i);
        }
        self.output.push(word);
        true
    }

    /// Burst fast path: bulk-move whole packets with one stream borrow per
    /// packet instead of a `can_push`/`pop`/`push` triple per word. The
    /// word sequence and round-robin decisions are identical to repeated
    /// [`InputArbiter::forward_one`]; only the locking overhead collapses.
    fn forward_burst(&mut self) {
        loop {
            let source = match self.locked {
                Some(i) => Some(i),
                None => {
                    let n = self.inputs.len();
                    (0..n)
                        .map(|k| (self.next + k) % n)
                        .find(|&i| self.inputs[i].can_pop())
                }
            };
            let Some(i) = source else { return };
            let (moved, completed) = self.inputs[i].transfer_packet(&self.output);
            self.words += moved as u64;
            if completed {
                self.packets += 1;
                self.locked = None;
                self.next = (i + 1) % self.inputs.len();
            } else {
                // Mid-packet stall: the input ran dry or the output filled.
                // Keep (or take) the lock if any word moved; either way no
                // further progress is possible this tick.
                if moved > 0 {
                    self.locked = Some(i);
                }
                return;
            }
        }
    }

    /// Packets fully forwarded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Words forwarded.
    pub fn words(&self) -> u64 {
        self.words
    }
}

impl Module for InputArbiter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        if self.burst {
            self.forward_burst();
        } else {
            self.forward_one();
        }
    }

    fn reset(&mut self) {
        self.next = 0;
        self.locked = None;
        self.packets = 0;
        self.words = 0;
    }

    /// Watchdog recovery: release a mid-packet lock whose remaining words
    /// were flushed upstream — the next `sop` on any input then arbitrates
    /// normally (downstream reassemblers resync past the orphaned
    /// prefix). Round-robin position and counters survive.
    fn soft_reset(&mut self) {
        self.locked = None;
    }

    /// Idle when every input is empty: with nothing to pop, a tick cannot
    /// move a word regardless of lock or output state.
    fn is_quiescent(&self) -> bool {
        self.inputs.iter().all(|rx| !rx.can_pop())
    }

    /// External activity channels: pushes into any input, pops from the
    /// output.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::Stream;
    use netfpga_core::time::{Frequency, Time};

    fn build(
        n: usize,
    ) -> (
        Simulator,
        Vec<netfpga_core::packetio::InjectQueue>,
        netfpga_core::packetio::CaptureBuffer,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let mut rxs = Vec::new();
        let mut queues = Vec::new();
        for p in 0..n {
            let (tx, rx) = Stream::new(8, 32);
            let (src, q) = PacketSource::new(&format!("src{p}"), tx);
            sim.add_module(clk, src);
            rxs.push(rx);
            queues.push(q);
        }
        let (out_tx, out_rx) = Stream::new(8, 32);
        let arb = InputArbiter::new("arb", rxs, out_tx);
        let (sink, captured) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, arb);
        sim.add_module(clk, sink);
        (sim, queues, captured)
    }

    #[test]
    fn merges_all_inputs_without_loss() {
        let (mut sim, queues, captured) = build(4);
        for (p, q) in queues.iter().enumerate() {
            for k in 0..5 {
                q.push(vec![(p * 10 + k) as u8; 100], p as u8);
            }
        }
        sim.run_until(Time::from_us(10));
        assert_eq!(captured.total_packets(), 20);
        // Every packet arrives intact with its source port preserved.
        let mut per_port = [0usize; 4];
        for c in captured.drain() {
            per_port[usize::from(c.meta.src_port)] += 1;
            assert_eq!(c.data.len(), 100);
            assert!(c.data.iter().all(|&b| b == c.data[0]));
        }
        assert_eq!(per_port, [5, 5, 5, 5]);
    }

    #[test]
    fn packets_never_interleave() {
        let (mut sim, queues, captured) = build(3);
        // Multi-word packets from all inputs simultaneously.
        for (p, q) in queues.iter().enumerate() {
            q.push(vec![p as u8; 320], p as u8); // 10 words each
        }
        sim.run_until(Time::from_us(10));
        assert_eq!(captured.total_packets(), 3);
        for c in captured.drain() {
            // Uniform content proves words were not mixed across packets.
            assert!(c.data.iter().all(|&b| b == c.data[0]));
            assert_eq!(c.data.len(), 320);
        }
    }

    #[test]
    fn round_robin_is_fair_under_saturation() {
        let (mut sim, queues, captured) = build(2);
        for (p, q) in queues.iter().enumerate() {
            for _ in 0..50 {
                q.push(vec![p as u8; 64], p as u8);
            }
        }
        sim.run_until(Time::from_us(50));
        let order: Vec<u8> = captured.drain().iter().map(|c| c.meta.src_port).collect();
        assert_eq!(order.len(), 100);
        // Strict alternation once both are backlogged.
        for pair in order.windows(2).take(90) {
            assert_ne!(pair[0], pair[1], "RR must alternate: {order:?}");
        }
    }

    #[test]
    fn work_conserving_when_one_input_idle() {
        let (mut sim, queues, captured) = build(4);
        for _ in 0..10 {
            queues[2].push(vec![9u8; 64], 2);
        }
        sim.run_until(Time::from_us(10));
        assert_eq!(captured.total_packets(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_input_list_rejected() {
        let (tx, _rx) = Stream::new(1, 32);
        let _ = InputArbiter::new("arb", Vec::new(), tx);
    }
}
