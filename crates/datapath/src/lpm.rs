//! Longest-prefix-match route table: a binary trie, as the reference
//! router's lookup core implements in BRAM.

use netfpga_packet::addr::{Ipv4Address, Ipv4Cidr};

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Gateway to forward to; `UNSPECIFIED` means directly connected (the
    /// destination itself is the next hop).
    pub next_hop: Ipv4Address,
    /// Egress port index.
    pub port: u8,
}

#[derive(Debug, Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    entry: Option<RouteEntry>,
}

/// A binary-trie LPM table mapping IPv4 prefixes to [`RouteEntry`]s.
///
/// ```
/// use netfpga_datapath::lpm::{LpmTable, RouteEntry};
/// use netfpga_packet::Ipv4Address;
///
/// let mut table = LpmTable::new();
/// table.insert(
///     "10.0.0.0/8".parse().unwrap(),
///     RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port: 0 },
/// );
/// table.insert(
///     "10.1.0.0/16".parse().unwrap(),
///     RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port: 1 },
/// );
/// // Longest prefix wins.
/// assert_eq!(table.lookup("10.1.2.3".parse().unwrap()).unwrap().port, 1);
/// assert_eq!(table.lookup("10.9.9.9".parse().unwrap()).unwrap().port, 0);
/// ```
#[derive(Debug, Default)]
pub struct LpmTable {
    root: Node,
    routes: usize,
}

impl LpmTable {
    /// An empty table.
    pub fn new() -> LpmTable {
        LpmTable::default()
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes
    }

    /// True if no route is installed.
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Insert (or replace) a route for `prefix`. Returns the previous entry
    /// for the exact prefix, if any.
    pub fn insert(&mut self, prefix: Ipv4Cidr, entry: RouteEntry) -> Option<RouteEntry> {
        let bits = prefix.network().to_u32();
        let mut node = &mut self.root;
        for i in 0..prefix.prefix_len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.entry.replace(entry);
        if old.is_none() {
            self.routes += 1;
        }
        old
    }

    /// Remove the route for the exact `prefix`. Returns the removed entry.
    pub fn remove(&mut self, prefix: Ipv4Cidr) -> Option<RouteEntry> {
        let bits = prefix.network().to_u32();
        let mut node = &mut self.root;
        for i in 0..prefix.prefix_len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        let old = node.entry.take();
        if old.is_some() {
            self.routes -= 1;
        }
        old
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: Ipv4Address) -> Option<RouteEntry> {
        let bits = addr.to_u32();
        let mut node = &self.root;
        let mut best = node.entry;
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.entry.is_some() {
                        best = node.entry;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Resolve the next-hop IP for `dst`: the gateway, or `dst` itself on a
    /// directly connected route. `None` if no route matches.
    pub fn next_hop(&self, dst: Ipv4Address) -> Option<(Ipv4Address, u8)> {
        let e = self.lookup(dst)?;
        let nh = if e.next_hop.is_unspecified() {
            dst
        } else {
            e.next_hop
        };
        Some((nh, e.port))
    }

    /// Remove every route.
    pub fn clear(&mut self) {
        self.root = Node::default();
        self.routes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn entry(port: u8) -> RouteEntry {
        RouteEntry {
            next_hop: ip("192.168.0.1"),
            port,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTable::new();
        t.insert(cidr("10.0.0.0/8"), entry(0));
        t.insert(cidr("10.1.0.0/16"), entry(1));
        t.insert(cidr("10.1.2.0/24"), entry(2));
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().port, 2);
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().port, 1);
        assert_eq!(t.lookup(ip("10.9.9.9")).unwrap().port, 0);
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route() {
        let mut t = LpmTable::new();
        t.insert(cidr("0.0.0.0/0"), entry(7));
        t.insert(cidr("10.0.0.0/8"), entry(1));
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().port, 7);
        assert_eq!(t.lookup(ip("10.0.0.1")).unwrap().port, 1);
    }

    #[test]
    fn host_route() {
        let mut t = LpmTable::new();
        t.insert(cidr("10.0.0.0/8"), entry(0));
        t.insert(cidr("10.0.0.5/32"), entry(9));
        assert_eq!(t.lookup(ip("10.0.0.5")).unwrap().port, 9);
        assert_eq!(t.lookup(ip("10.0.0.6")).unwrap().port, 0);
    }

    #[test]
    fn replace_and_remove() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(cidr("10.0.0.0/24"), entry(1)), None);
        assert_eq!(t.insert(cidr("10.0.0.0/24"), entry(2)), Some(entry(1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(cidr("10.0.0.0/24")), Some(entry(2)));
        assert_eq!(t.remove(cidr("10.0.0.0/24")), None);
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("10.0.0.1")), None);
    }

    #[test]
    fn next_hop_resolution() {
        let mut t = LpmTable::new();
        // Directly connected: next hop is the destination.
        t.insert(
            cidr("10.0.1.0/24"),
            RouteEntry {
                next_hop: Ipv4Address::UNSPECIFIED,
                port: 1,
            },
        );
        // Via gateway.
        t.insert(
            cidr("0.0.0.0/0"),
            RouteEntry {
                next_hop: ip("10.0.1.254"),
                port: 1,
            },
        );
        assert_eq!(t.next_hop(ip("10.0.1.9")), Some((ip("10.0.1.9"), 1)));
        assert_eq!(t.next_hop(ip("99.0.0.1")), Some((ip("10.0.1.254"), 1)));
    }

    #[test]
    fn clear_empties() {
        let mut t = LpmTable::new();
        t.insert(cidr("10.0.0.0/8"), entry(0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("10.0.0.1")), None);
    }

    proptest! {
        /// Trie agrees with a brute-force reference over random prefixes.
        #[test]
        fn prop_matches_reference(
            routes in proptest::collection::btree_map((any::<u32>(), 0u8..=32), 0u8..16, 1..32),
            probes in proptest::collection::vec(any::<u32>(), 16),
        ) {
            let mut t = LpmTable::new();
            let rules: Vec<(u32, u8, u8)> = routes
                .iter()
                .map(|(&(addr, len), &port)| (addr, len, port))
                .collect();
            // Dedup by network: later inserts replace earlier ones for the
            // same effective prefix, mirror that in the reference.
            let mut effective: std::collections::BTreeMap<(u32, u8), u8> = Default::default();
            for &(addr, len, port) in &rules {
                let c = Ipv4Cidr::new(Ipv4Address::from_u32(addr), len);
                t.insert(c, RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port });
                effective.insert((c.network().to_u32(), len), port);
            }
            prop_assert_eq!(t.len(), effective.len());
            for probe in probes {
                let expect = effective
                    .iter()
                    .filter(|(&(net, len), _)| {
                        let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
                        probe & mask == net
                    })
                    .max_by_key(|(&(_, len), _)| len)
                    .map(|(_, &port)| port);
                prop_assert_eq!(
                    t.lookup(Ipv4Address::from_u32(probe)).map(|e| e.port),
                    expect
                );
            }
        }
    }
}
