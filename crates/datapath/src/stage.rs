//! The packet-stage shell: the "output port lookup" pattern.
//!
//! Nearly every project-specific block on the platform has the same shape:
//! receive a packet, inspect or rewrite its head and metadata, forward or
//! drop it, all behind a fixed pipeline latency. [`PacketStage`] is that
//! shell; projects supply the logic as a [`PacketLogic`] implementation
//! (the switch's learning lookup, the router's LPM + TTL stage, BlueSwitch
//! match-action, the example middlebox's dedup filter).
//!
//! The stage is store-and-forward but pipelined: it keeps absorbing input
//! words while earlier packets are still being emitted, so a full stream
//! of back-to-back packets flows at one word per cycle.

use netfpga_core::pktbuf::PktBuf;
use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{segment_buf, Meta, Reassembler, StreamRx, StreamTx, Word};
use netfpga_core::telemetry::StatRegistry;
use netfpga_core::time::Time;
use std::collections::VecDeque;

/// What to do with a processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAction {
    /// Emit the (possibly rewritten) packet downstream.
    Forward,
    /// Discard it (counted).
    Drop,
}

/// Project-supplied packet logic.
pub trait PacketLogic {
    /// Process one packet: may rewrite bytes and metadata. Returns whether
    /// to forward or drop. `now` is the instant the last word arrived.
    ///
    /// The packet is a refcounted [`PktBuf`]: read it like a slice (it
    /// derefs to `[u8]`); rewrite fixed-size bytes through
    /// [`PktBuf::make_mut`] and resize through [`PktBuf::edit`] — both
    /// copy-on-write, so pass-through logic stays zero-copy end to end.
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, now: Time) -> StageAction;

    /// Called on simulator reset. Default: nothing.
    fn reset(&mut self) {}
}

/// Blanket impl so closures work as logic for simple stages and tests.
impl<F> PacketLogic for F
where
    F: FnMut(&mut PktBuf, &mut Meta, Time) -> StageAction,
{
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, now: Time) -> StageAction {
        self(packet, meta, now)
    }
}

/// Stage counters (a point-in-time snapshot; the live values are shared
/// [`Counter`] cells the stage increments and the telemetry plane reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Packets received in full.
    pub in_packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped by the logic.
    pub dropped: u64,
}

/// The live shared cells behind [`StageStats`].
#[derive(Debug, Clone, Default)]
struct StageCounters {
    in_packets: Counter,
    forwarded: Counter,
    dropped: Counter,
}

/// The store-and-forward stage shell. See module docs.
pub struct PacketStage<L: PacketLogic> {
    name: String,
    input: StreamRx,
    output: StreamTx,
    logic: L,
    /// Extra pipeline latency in cycles between full receipt and the first
    /// emitted word (models the block's internal pipeline depth).
    latency_cycles: u64,
    reasm: Reassembler,
    /// Processed packets awaiting emission: (release_cycle, release_time,
    /// words). The absolute release instant mirrors the release cycle
    /// (`ingest_now + latency * period`) so [`Module::next_activity`] can
    /// report how long the stage is provably inert.
    ready: VecDeque<(u64, Time, VecDeque<Word>)>,
    /// Words of the packet currently being emitted.
    emitting: VecDeque<Word>,
    /// Cap on buffered processed packets before input stalls.
    max_ready: usize,
    stats: StageCounters,
    /// Burst fast path: move every available word per tick instead of one.
    burst: bool,
    /// Activity-cache invalidation flag, registered on the input and the
    /// output (pops free the space a stalled emission waits on).
    wake: WakeHandle,
}

impl<L: PacketLogic> PacketStage<L> {
    /// Create a stage with the given pipeline `latency_cycles`.
    pub fn new(
        name: &str,
        input: StreamRx,
        output: StreamTx,
        latency_cycles: u64,
        logic: L,
    ) -> PacketStage<L> {
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        output.set_wake(wake.clone());
        PacketStage {
            name: name.to_string(),
            input,
            output,
            logic,
            latency_cycles,
            reasm: Reassembler::new(),
            ready: VecDeque::new(),
            emitting: VecDeque::new(),
            max_ready: 4,
            stats: StageCounters::default(),
            burst: false,
            wake,
        }
    }

    /// Enable the burst fast path: each tick ingests every buffered input
    /// word and emits released packets until the output fills, instead of
    /// moving one word per cycle. Packet ordering, logic decisions and the
    /// pipeline-latency release rule are unchanged; only the cycle-level
    /// pacing is collapsed.
    pub fn with_burst(mut self, enabled: bool) -> PacketStage<L> {
        self.burst = enabled;
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> StageStats {
        StageStats {
            in_packets: self.stats.in_packets.get(),
            forwarded: self.stats.forwarded.get(),
            dropped: self.stats.dropped.get(),
        }
    }

    /// Register the stage's counters on `registry` under `prefix` (e.g.
    /// `lookup.stage`): `in_packets`, `forwarded`, `dropped`. The shared
    /// cells themselves are registered, so registry reads equal
    /// [`PacketStage::stats`] bit for bit. Call before handing the stage
    /// to the simulator.
    pub fn register_stats(&self, registry: &StatRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.in_packets"), &self.stats.in_packets);
        registry.register_counter(&format!("{prefix}.forwarded"), &self.stats.forwarded);
        registry.register_counter(&format!("{prefix}.dropped"), &self.stats.dropped);
    }

    /// Access the logic (e.g. to read tables out-of-band in tests).
    pub fn logic(&self) -> &L {
        &self.logic
    }

    /// Mutable access to the logic (host-side table management in tests;
    /// real projects mutate through register spaces instead).
    pub fn logic_mut(&mut self) -> &mut L {
        &mut self.logic
    }
}

impl<L: PacketLogic> Module for PacketStage<L> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &TickContext) {
        // Ingest one word per cycle unless too much is buffered; in burst
        // mode, keep ingesting while words are buffered upstream.
        while self.ready.len() < self.max_ready {
            let Some(word) = self.input.pop() else { break };
            if let Some((mut packet, mut meta)) = self.reasm.push(word) {
                self.stats.in_packets.incr();
                match self.logic.process(&mut packet, &mut meta, ctx.now) {
                    StageAction::Forward => {
                        assert!(!packet.is_empty(), "logic emptied packet");
                        meta.len = packet.len() as u16;
                        let words = segment_buf(&packet, self.output.width(), meta);
                        let release_at =
                            ctx.now + Time::from_ps(self.latency_cycles * ctx.period.as_ps());
                        self.ready.push_back((
                            ctx.cycle + self.latency_cycles,
                            release_at,
                            words.into(),
                        ));
                        self.stats.forwarded.incr();
                    }
                    StageAction::Drop => {
                        self.stats.dropped.incr();
                    }
                }
            }
            if !self.burst {
                break;
            }
        }

        // Emit one word per cycle; in burst mode, emit released packets
        // until the output fills or nothing releasable remains.
        loop {
            if self.emitting.is_empty() {
                match self.ready.front() {
                    Some(&(release, _, _)) if release <= ctx.cycle => {
                        self.emitting = self.ready.pop_front().expect("front exists").2;
                    }
                    _ => break,
                }
            }
            if self.burst {
                self.output.push_burst(&mut self.emitting);
                if !self.emitting.is_empty() {
                    break; // downstream full: resume next tick
                }
            } else {
                if self.output.can_push() {
                    let word = self.emitting.pop_front().expect("non-empty");
                    self.output.push(word);
                }
                break;
            }
        }
    }

    fn reset(&mut self) {
        self.reasm = Reassembler::new();
        self.ready.clear();
        self.emitting.clear();
        self.stats.in_packets.clear();
        self.stats.forwarded.clear();
        self.stats.dropped.clear();
        self.logic.reset();
    }

    /// Watchdog recovery: discard a partially reassembled arrival (its
    /// tail was flushed upstream, counted as a drop) and a frame already
    /// cut short mid-emission (downstream resyncs). Processed packets
    /// waiting out the pipeline latency, counters and the stage logic's
    /// learned state all survive.
    fn soft_reset(&mut self) {
        if self.reasm.resync() {
            self.stats.dropped.incr();
        }
        if self.emitting.front().is_some_and(|w| !w.sop) {
            self.emitting.clear();
        }
    }

    /// Idle when there is nothing to ingest and nothing staged for
    /// emission. `ready` must be empty too: packets there wait on a
    /// release *cycle*, which is time-dependent work.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop() && self.ready.is_empty() && self.emitting.is_empty()
    }

    /// With nothing to ingest or emit but packets waiting out the pipeline
    /// latency, the tick is a no-op until the earliest release instant —
    /// exactly the release cycle the emit path gates on.
    fn next_activity(&self) -> Option<Time> {
        if self.input.can_pop() || !self.emitting.is_empty() {
            return None;
        }
        self.ready.front().map(|&(_, release_at, _)| release_at)
    }

    /// External activity channels: pushes into the input, pops from the
    /// output.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::{PortMask, Stream};
    use netfpga_core::time::Frequency;

    fn pipeline<L: PacketLogic + 'static>(
        latency: u64,
        logic: L,
    ) -> (
        Simulator,
        netfpga_core::packetio::InjectQueue,
        netfpga_core::packetio::CaptureBuffer,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, out_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let stage = PacketStage::new("stage", in_rx, out_tx, latency, logic);
        let (sink, captured) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, src);
        sim.add_module(clk, stage);
        sim.add_module(clk, sink);
        (sim, inject, captured)
    }

    #[test]
    fn passthrough_forwards_intact() {
        let (mut sim, inject, captured) =
            pipeline(0, |_p: &mut PktBuf, _m: &mut Meta, _t: Time| {
                StageAction::Forward
            });
        let pkt: Vec<u8> = (0..200).map(|i| i as u8).collect();
        inject.push(pkt.clone(), 3);
        sim.run_until(Time::from_us(2));
        let got = captured.pop().unwrap();
        assert_eq!(got.data, pkt);
        assert_eq!(got.meta.src_port, 3);
    }

    #[test]
    fn rewriting_logic_applies() {
        let (mut sim, inject, captured) = pipeline(0, |p: &mut PktBuf, m: &mut Meta, _t: Time| {
            p.edit(|v| {
                v[0] = 0xff;
                v.push(0xee); // grow by one byte
            });
            m.dst_ports = PortMask::single(2);
            StageAction::Forward
        });
        inject.push(vec![0u8; 64], 0);
        sim.run_until(Time::from_us(2));
        let got = captured.pop().unwrap();
        assert_eq!(got.data[0], 0xff);
        assert_eq!(got.data.len(), 65);
        assert_eq!(got.meta.len, 65, "meta.len refreshed after rewrite");
        assert!(got.meta.dst_ports.contains(2));
    }

    #[test]
    fn drop_logic_counts() {
        let (mut sim, inject, captured) = pipeline(0, |p: &mut PktBuf, _m: &mut Meta, _t: Time| {
            if p[0].is_multiple_of(2) {
                StageAction::Drop
            } else {
                StageAction::Forward
            }
        });
        for i in 0..10u8 {
            inject.push(vec![i; 64], 0);
        }
        sim.run_until(Time::from_us(5));
        assert_eq!(captured.total_packets(), 5);
        for c in captured.drain() {
            assert_eq!(c.data[0] % 2, 1);
        }
    }

    #[test]
    fn latency_delays_emission() {
        let run = |latency: u64| {
            let (mut sim, inject, captured) =
                pipeline(latency, |_p: &mut PktBuf, _m: &mut Meta, _t: Time| {
                    StageAction::Forward
                });
            inject.push(vec![0u8; 32], 0);
            sim.run_until(Time::from_us(2));
            captured.pop().unwrap().arrival
        };
        let fast = run(0);
        let slow = run(40);
        let delta = (slow - fast).as_ps();
        // 40 cycles at 200 MHz = 200 ns.
        assert_eq!(delta, 200_000, "latency {delta} ps");
    }

    /// Back-to-back multi-word packets flow at full rate: the stage
    /// pipelines receive and emit.
    #[test]
    fn sustained_full_rate() {
        let (mut sim, inject, captured) =
            pipeline(0, |_p: &mut PktBuf, _m: &mut Meta, _t: Time| {
                StageAction::Forward
            });
        let n = 50;
        for _ in 0..n {
            inject.push(vec![1u8; 320], 0); // 10 words each
        }
        // Ideal: 500 words. Allow small pipeline fill slack.
        let mut cycles = 0u64;
        let clk_period = Time::from_ps(5_000);
        while captured.total_packets() < n {
            sim.run_for(clk_period);
            cycles += 1;
            assert!(
                cycles < 520,
                "too slow: {} pkts after {cycles} cycles",
                captured.total_packets()
            );
        }
    }

    #[test]
    fn stateful_logic_via_struct() {
        struct Counter {
            seen: u64,
        }
        impl PacketLogic for Counter {
            fn process(&mut self, _p: &mut PktBuf, _m: &mut Meta, _t: Time) -> StageAction {
                self.seen += 1;
                StageAction::Forward
            }
            fn reset(&mut self) {
                self.seen = 0;
            }
        }
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(100));
        let (in_tx, in_rx) = Stream::new(4, 32);
        let (out_tx, _out_rx) = Stream::new(64, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let stage = PacketStage::new("count", in_rx, out_tx, 0, Counter { seen: 0 });
        sim.add_module(clk, src);
        // Keep a probe before moving: we check via stats instead.
        let stats_probe = {
            inject.push(vec![0; 64], 0);
            inject.push(vec![0; 64], 0);
            stage
        };
        sim.add_module(clk, stats_probe);
        sim.run_until(Time::from_us(2));
        // Indirect check: both packets traversed (sink not attached, but
        // the 64-word output channel absorbed them).
    }
}
