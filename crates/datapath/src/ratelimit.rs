//! A token-bucket rate limiter stage: pass-through that paces packets to a
//! configured rate — used by OSNT's generator for sub-line-rate streams and
//! available as a building block for traffic shaping research.

use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stream::{StreamRx, StreamTx, Word};
use netfpga_core::time::{BitRate, Time};

/// Token-bucket pacing stage. Tokens are bytes; a packet may start only
/// when the bucket holds its full length (strict conformance), and the
/// whole packet debits at start.
///
/// The bucket level is the *pure function* `min(burst, base + (now −
/// base_time) · rate)`, with the base mutated only on a debit. An earlier
/// revision accumulated the level incrementally on every tick, which would
/// make the value depend on how many no-op edges the kernel executed —
/// ruling out idle-skipping this stage. The closed form makes every no-op
/// tick literally a no-op, so skipped edges are bit-identical.
pub struct RateLimiter {
    name: String,
    input: StreamRx,
    output: StreamTx,
    rate: BitRate,
    burst_bytes: f64,
    /// Token count at `base_time`; the live level is `tokens_at(now)`.
    tokens_base: f64,
    base_time: Time,
    /// Words of the admitted packet still to copy through.
    in_packet: bool,
    packets: u64,
    /// Activity-cache invalidation flag, registered on the input stream.
    wake: WakeHandle,
}

impl RateLimiter {
    /// Pace to `rate`, allowing bursts of `burst_bytes` (at least one MTU).
    pub fn new(
        name: &str,
        input: StreamRx,
        output: StreamTx,
        rate: BitRate,
        burst_bytes: usize,
    ) -> RateLimiter {
        assert!(
            burst_bytes >= 1514,
            "burst must cover at least one MTU frame"
        );
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        RateLimiter {
            name: name.to_string(),
            input,
            output,
            rate,
            burst_bytes: burst_bytes as f64,
            tokens_base: burst_bytes as f64,
            base_time: Time::ZERO,
            in_packet: false,
            packets: 0,
            wake,
        }
    }

    /// Packets admitted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Bucket level at `now`: closed-form refill since the last debit.
    fn tokens_at(&self, now: Time) -> f64 {
        let dt = now.saturating_sub(self.base_time).as_secs_f64();
        (self.tokens_base + dt * self.rate.as_bps() as f64 / 8.0).min(self.burst_bytes)
    }

    /// Debit `len` bytes at `now`, re-anchoring the closed form.
    fn debit(&mut self, now: Time, len: f64) {
        self.tokens_base = self.tokens_at(now) - len;
        self.base_time = now;
    }

    fn head_packet_len(&self) -> Option<usize> {
        // Packet length travels in the sop word's metadata.
        let word = self.input.peek()?;
        if !word.sop {
            return Some(0); // mid-packet words always pass
        }
        Some(usize::from(word.meta.map(|m| m.len).unwrap_or(0)))
    }

    fn forward_one(&mut self) -> Option<Word> {
        if !self.output.can_push() {
            return None;
        }
        let word = self.input.pop()?;
        self.in_packet = !word.eop;
        self.output.push(word.clone());
        Some(word)
    }
}

impl Module for RateLimiter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &TickContext) {
        if self.in_packet {
            // Finish the admitted packet regardless of tokens.
            self.forward_one();
            return;
        }
        let Some(len) = self.head_packet_len() else {
            return;
        };
        if len == 0 {
            // Defensive: a framing anomaly; pass it through.
            self.forward_one();
            return;
        }
        if self.tokens_at(ctx.now) >= len as f64 {
            if let Some(word) = self.forward_one() {
                if word.sop {
                    self.debit(ctx.now, len as f64);
                    self.packets += 1;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.tokens_base = self.burst_bytes;
        self.base_time = Time::ZERO;
        self.in_packet = false;
        self.packets = 0;
    }

    /// Idle when the input is empty: the bucket level is a closed form of
    /// time, so an input-less tick has no effect at any future edge.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop()
    }

    /// With a head packet waiting on tokens, the tick is a no-op until the
    /// bucket reaches the packet's length — a known instant under the
    /// closed-form refill. Floor rounding only makes the bound early
    /// (harmless: one extra no-op tick, never a missed admission).
    fn next_activity(&self) -> Option<Time> {
        if self.in_packet {
            return None;
        }
        let len = self.head_packet_len()?;
        if len == 0 || self.rate.as_bps() == 0 {
            return None;
        }
        let deficit = len as f64 - self.tokens_base;
        if deficit <= 0.0 {
            return None; // already admissible: must tick at the next edge
        }
        let secs = deficit * 8.0 / self.rate.as_bps() as f64;
        // Step back well past any float rounding: a bound a few ns early
        // costs a couple of no-op ticks; a bound one ulp late would skip
        // the admission edge.
        let ps = ((secs * 1e12) as u64).saturating_sub(4096);
        Some(self.base_time + Time::from_ps(ps))
    }

    /// Only upstream pushes can change the limiter's classification: the
    /// bucket refills by formula and the bound ignores downstream space.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::Stream;
    use netfpga_core::time::Frequency;

    fn rig(
        rate: BitRate,
    ) -> (
        Simulator,
        netfpga_core::packetio::InjectQueue,
        netfpga_core::packetio::CaptureBuffer,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, out_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let rl = RateLimiter::new("rl", in_rx, out_tx, rate, 2048);
        let (sink, cap) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, src);
        sim.add_module(clk, rl);
        sim.add_module(clk, sink);
        (sim, inject, cap)
    }

    #[test]
    fn rate_is_enforced() {
        // 1 Gb/s, 1000-byte packets -> 125 kpps -> 8 us per packet.
        let (mut sim, inject, cap) = rig(BitRate::gbps(1));
        let n = 50;
        for _ in 0..n {
            inject.push(vec![0u8; 1000], 0);
        }
        sim.run_until(Time::from_us(1000));
        assert_eq!(cap.total_packets(), n);
        let arrivals: Vec<Time> = cap.drain().iter().map(|c| c.arrival).collect();
        let span = (*arrivals.last().unwrap() - arrivals[0]).as_secs_f64();
        let rate_bps = ((n - 1) as f64 * 1000.0 * 8.0) / span;
        assert!(
            (rate_bps - 1e9).abs() / 1e9 < 0.05,
            "measured {:.3} Gb/s",
            rate_bps / 1e9
        );
    }

    #[test]
    fn bursts_up_to_bucket_pass_immediately() {
        let (mut sim, inject, cap) = rig(BitRate::mbps(10));
        // Bucket is 2048 bytes: two 1000-byte packets go out back-to-back.
        inject.push(vec![0u8; 1000], 0);
        inject.push(vec![0u8; 1000], 0);
        sim.run_until(Time::from_us(5));
        assert_eq!(cap.total_packets(), 2, "burst admitted without pacing");
    }

    #[test]
    fn packets_arrive_intact_and_in_order() {
        let (mut sim, inject, cap) = rig(BitRate::gbps(5));
        for i in 0..10u8 {
            inject.push(vec![i; 300], 0);
        }
        sim.run_until(Time::from_us(100));
        let seq: Vec<u8> = cap.drain().iter().map(|c| c.data[0]).collect();
        assert_eq!(seq, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "MTU")]
    fn tiny_burst_rejected() {
        let (tx, rx) = Stream::new(1, 32);
        let (tx2, _rx2) = Stream::new(1, 32);
        let _ = RateLimiter::new("rl", rx, tx2, BitRate::gbps(1), 100);
        drop(tx);
    }
}
