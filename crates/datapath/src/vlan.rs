//! VLAN handling blocks: 802.1Q tag push/pop stages and the VLAN-aware
//! extension of the learning core — library modules in the spirit of the
//! platform's "large library of modules ... provided" (paper §3).

use crate::learn::LearnStats;
use crate::parser::ParsedHeaders;
use netfpga_core::stream::{Meta, PortMask};
use netfpga_core::time::Time;
use netfpga_mem::AgingTable;
use netfpga_packet::ethernet::EthernetFrame;
use netfpga_packet::EthernetAddress;

/// Push an 802.1Q tag (vid, pcp) onto an untagged frame in place. Tagged
/// frames are left unchanged (single-tag model). Returns whether a tag was
/// added.
pub fn push_tag(frame: &mut Vec<u8>, vid: u16, pcp: u8) -> bool {
    let Ok(eth) = EthernetFrame::new_checked(&frame[..]) else {
        return false;
    };
    if eth.has_vlan() {
        return false;
    }
    let inner_type = u16::from(eth.ethertype_raw());
    let mut tag = [0u8; 4];
    tag[0..2].copy_from_slice(&0x8100u16.to_be_bytes());
    let tci = (u16::from(pcp & 0x7) << 13) | (vid & 0x0fff);
    tag[2..4].copy_from_slice(&tci.to_be_bytes());
    // Insert the tag between the addresses and the EtherType.
    frame.splice(12..12, tag.iter().copied());
    // The original EtherType now sits at 16..18 already (it moved with the
    // splice); the tag's 0x8100 occupies 12..14 and TCI 14..16.
    let _ = inner_type;
    true
}

/// Pop the 802.1Q tag off a tagged frame in place. Returns the (vid, pcp)
/// that was removed, or `None` if untagged.
pub fn pop_tag(frame: &mut Vec<u8>) -> Option<(u16, u8)> {
    let eth = EthernetFrame::new_checked(&frame[..]).ok()?;
    let vid = eth.vlan_id()?;
    let pcp = eth.vlan_pcp()?;
    frame.drain(12..16);
    Some((vid, pcp))
}

/// A VLAN-aware learning core: one logical forwarding table per VLAN
/// (keyed by (vid, mac)), flooding restricted to the VLAN's member ports.
/// Untagged traffic uses the per-port access VLAN.
pub struct VlanSwitchCore {
    table: AgingTable<(u16, u64), u8>,
    /// Member ports of each configured VLAN.
    members: std::collections::BTreeMap<u16, PortMask>,
    /// Access (native) VLAN per port, for untagged frames.
    access_vlan: Vec<u16>,
    stats: LearnStats,
}

impl VlanSwitchCore {
    /// Create with `nports` ports, all on access VLAN 1, with VLAN 1
    /// spanning every port.
    pub fn new(nports: u8, capacity: usize, age_limit: Time) -> VlanSwitchCore {
        let mut members = std::collections::BTreeMap::new();
        members.insert(1, PortMask::first_n(nports));
        VlanSwitchCore {
            table: AgingTable::new(capacity, age_limit),
            members,
            access_vlan: vec![1; usize::from(nports)],
            stats: LearnStats::default(),
        }
    }

    /// Define (or redefine) a VLAN's member ports.
    pub fn set_vlan(&mut self, vid: u16, members: PortMask) {
        self.members.insert(vid, members);
    }

    /// Set a port's access VLAN for untagged traffic.
    pub fn set_access_vlan(&mut self, port: u8, vid: u16) {
        let idx = usize::from(port);
        if idx < self.access_vlan.len() {
            self.access_vlan[idx] = vid;
        }
    }

    /// The VLAN a frame belongs to on `in_port`.
    pub fn classify_vlan(&self, headers: &ParsedHeaders, in_port: u8) -> u16 {
        headers.vlan.unwrap_or_else(|| {
            self.access_vlan
                .get(usize::from(in_port))
                .copied()
                .unwrap_or(1)
        })
    }

    /// Learning + forwarding decision. The returned mask never includes the
    /// ingress port and never leaves the frame's VLAN.
    pub fn forward(&mut self, frame: &[u8], meta: &Meta, now: Time) -> PortMask {
        let headers = ParsedHeaders::parse(frame);
        let vid = self.classify_vlan(&headers, meta.src_port);
        self.decide(vid, headers.eth_src, headers.eth_dst, meta.src_port, now)
    }

    /// Decision on parsed fields.
    pub fn decide(
        &mut self,
        vid: u16,
        src: EthernetAddress,
        dst: EthernetAddress,
        in_port: u8,
        now: Time,
    ) -> PortMask {
        let Some(&vlan_ports) = self.members.get(&vid) else {
            // Unknown VLAN: drop (no members configured).
            return PortMask::EMPTY;
        };
        if !vlan_ports.contains(in_port) {
            // Ingress port is not a member: drop (802.1Q ingress filter).
            return PortMask::EMPTY;
        }
        if src.is_unicast() {
            if self.table.insert((vid, src.to_u64()), in_port, now) {
                self.stats.learned += 1;
            } else {
                self.stats.learn_failures += 1;
            }
        }
        let mut mask = if dst.is_unicast() {
            match self.table.lookup(&(vid, dst.to_u64()), now) {
                Some(port) if vlan_ports.contains(port) => {
                    self.stats.hits += 1;
                    PortMask::single(port)
                }
                _ => {
                    self.stats.floods += 1;
                    vlan_ports
                }
            }
        } else {
            self.stats.floods += 1;
            vlan_ports
        };
        mask.remove(in_port);
        mask
    }

    /// Counters so far.
    pub fn stats(&self) -> LearnStats {
        self.stats
    }

    /// Flush the forwarding table.
    pub fn flush(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::{Ipv4Address, PacketBuilder};
    use proptest::prelude::*;

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn tagged_frame(src: u8, dst: u8, vid: u16) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .vlan(vid, 0)
            .ipv4(
                Ipv4Address::new(10, 0, 0, src),
                Ipv4Address::new(10, 0, 0, dst),
            )
            .udp(1, 2, b"v")
            .build()
    }

    fn untagged_frame(src: u8, dst: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .ipv4(
                Ipv4Address::new(10, 0, 0, src),
                Ipv4Address::new(10, 0, 0, dst),
            )
            .udp(1, 2, b"u")
            .build()
    }

    #[test]
    fn push_pop_roundtrip() {
        let original = untagged_frame(1, 2);
        let mut f = original.clone();
        assert!(push_tag(&mut f, 100, 5));
        assert_eq!(f.len(), original.len() + 4);
        let h = ParsedHeaders::parse(&f);
        assert_eq!(h.vlan, Some(100));
        assert!(h.ipv4.is_some(), "inner payload intact");
        // Pushing onto a tagged frame is a no-op.
        assert!(!push_tag(&mut f, 200, 0));
        // Pop restores the original exactly.
        assert_eq!(pop_tag(&mut f), Some((100, 5)));
        assert_eq!(f, original);
        assert_eq!(pop_tag(&mut f), None);
    }

    #[test]
    fn vlans_isolate_flooding() {
        let mut core = VlanSwitchCore::new(4, 256, Time::from_ms(100));
        core.set_vlan(10, PortMask(0b0011)); // ports 0,1
        core.set_vlan(20, PortMask(0b1100)); // ports 2,3
        let meta = |p: u8| Meta {
            src_port: p,
            ..Default::default()
        };
        let mask = core.forward(&tagged_frame(1, 9, 10), &meta(0), Time::ZERO);
        assert_eq!(mask, PortMask(0b0010), "VLAN 10 floods only port 1");
        let mask = core.forward(&tagged_frame(2, 9, 20), &meta(2), Time::ZERO);
        assert_eq!(mask, PortMask(0b1000), "VLAN 20 floods only port 3");
    }

    #[test]
    fn same_mac_learned_independently_per_vlan() {
        let mut core = VlanSwitchCore::new(4, 256, Time::from_ms(100));
        core.set_vlan(10, PortMask(0b0011));
        core.set_vlan(20, PortMask(0b1100));
        // Station mac(5) appears on port 0 in VLAN 10, port 3 in VLAN 20.
        core.decide(10, mac(5), mac(9), 0, Time::ZERO);
        core.decide(20, mac(5), mac(9), 3, Time::ZERO);
        // Lookup in each VLAN resolves to its own port.
        let m10 = core.decide(10, mac(6), mac(5), 1, Time::from_us(1));
        assert_eq!(m10, PortMask::single(0));
        let m20 = core.decide(20, mac(6), mac(5), 2, Time::from_us(1));
        assert_eq!(m20, PortMask::single(3));
    }

    #[test]
    fn ingress_filter_drops_nonmember() {
        let mut core = VlanSwitchCore::new(4, 256, Time::from_ms(100));
        core.set_vlan(10, PortMask(0b0011));
        let meta = Meta {
            src_port: 3,
            ..Default::default()
        }; // not a member
        let mask = core.forward(&tagged_frame(1, 2, 10), &meta, Time::ZERO);
        assert!(mask.is_empty());
        // Unknown VLAN also drops.
        let meta = Meta {
            src_port: 0,
            ..Default::default()
        };
        let mask = core.forward(&tagged_frame(1, 2, 999), &meta, Time::ZERO);
        assert!(mask.is_empty());
    }

    #[test]
    fn untagged_uses_access_vlan() {
        let mut core = VlanSwitchCore::new(4, 256, Time::from_ms(100));
        core.set_vlan(10, PortMask(0b0011));
        core.set_vlan(20, PortMask(0b1100));
        core.set_access_vlan(0, 10);
        core.set_access_vlan(1, 10);
        core.set_access_vlan(2, 20);
        core.set_access_vlan(3, 20);
        let meta = Meta {
            src_port: 0,
            ..Default::default()
        };
        let mask = core.forward(&untagged_frame(1, 2), &meta, Time::ZERO);
        assert_eq!(mask, PortMask(0b0010), "access VLAN 10 scope");
        let meta = Meta {
            src_port: 2,
            ..Default::default()
        };
        let mask = core.forward(&untagged_frame(3, 4), &meta, Time::ZERO);
        assert_eq!(mask, PortMask(0b1000), "access VLAN 20 scope");
    }

    proptest! {
        /// push_tag/pop_tag round-trips arbitrary untagged frames and
        /// arbitrary (vid, pcp) values.
        #[test]
        fn prop_push_pop_roundtrip(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            vid in 0u16..4096,
            pcp in 0u8..8,
        ) {
            let original = PacketBuilder::new()
                .eth(mac(1), mac(2))
                .raw(netfpga_packet::EtherType::Unknown(0x9000), &payload)
                .build();
            let mut f = original.clone();
            prop_assert!(push_tag(&mut f, vid, pcp));
            let h = ParsedHeaders::parse(&f);
            prop_assert_eq!(h.vlan, Some(vid & 0x0fff));
            prop_assert_eq!(pop_tag(&mut f), Some((vid & 0x0fff, pcp)));
            prop_assert_eq!(f, original);
        }
    }

    #[test]
    fn stale_learned_port_outside_vlan_floods() {
        let mut core = VlanSwitchCore::new(4, 256, Time::from_ms(100));
        core.set_vlan(10, PortMask(0b0111));
        // Learn mac(5)@2 in VLAN 10, then shrink the VLAN to ports 0,1.
        core.decide(10, mac(5), mac(9), 2, Time::ZERO);
        core.set_vlan(10, PortMask(0b0011));
        let mask = core.decide(10, mac(6), mac(5), 0, Time::from_us(1));
        assert_eq!(mask, PortMask(0b0010), "stale entry ignored, flood in-VLAN");
    }
}
