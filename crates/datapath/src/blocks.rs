//! The resource-cost catalogue: approximate synthesis cost of each
//! building block, calibrated against published NetFPGA reference-design
//! utilization reports. Experiment E7 sums these per project to compare
//! design utilization, the comparison §1 of the paper says block reuse
//! enables.

use netfpga_core::resources::ResourceCost;

/// Cost of one 10G MAC + PHY wrapper instance.
pub const MAC_10G: ResourceCost = ResourceCost {
    luts: 2_500,
    ffs: 3_500,
    bram_kbits: 72,
    dsps: 0,
};

/// Cost of the PCIe endpoint + DMA engine.
pub const PCIE_DMA: ResourceCost = ResourceCost {
    luts: 14_000,
    ffs: 18_000,
    bram_kbits: 1_152,
    dsps: 0,
};

/// Cost of the MMIO/register interconnect.
pub const REG_INTERCONNECT: ResourceCost = ResourceCost {
    luts: 1_200,
    ffs: 1_500,
    bram_kbits: 0,
    dsps: 0,
};

/// Cost of one N-to-1 input arbiter (N = 5: four ports + DMA).
pub const INPUT_ARBITER: ResourceCost = ResourceCost {
    luts: 2_000,
    ffs: 2_400,
    bram_kbits: 288,
    dsps: 0,
};

/// Cost of the reference NIC's trivial lookup (port pairing).
pub const NIC_LOOKUP: ResourceCost = ResourceCost {
    luts: 300,
    ffs: 400,
    bram_kbits: 0,
    dsps: 0,
};

/// Cost of the learning-switch lookup (hash table + learning logic).
pub const SWITCH_LOOKUP: ResourceCost = ResourceCost {
    luts: 3_500,
    ffs: 3_000,
    bram_kbits: 576,
    dsps: 0,
};

/// Cost of the router lookup (LPM trie walker + ARP + TTL/checksum).
pub const ROUTER_LOOKUP: ResourceCost = ResourceCost {
    luts: 7_000,
    ffs: 6_000,
    bram_kbits: 1_440,
    dsps: 0,
};

/// Cost of one output-queues instance (per port, BRAM-buffered).
pub const OUTPUT_QUEUES_PER_PORT: ResourceCost = ResourceCost {
    luts: 1_200,
    ffs: 1_400,
    bram_kbits: 432,
    dsps: 0,
};

/// Cost of a scheduler beyond FIFO (DRR/WFQ arithmetic).
pub const SCHEDULER_EXTRA: ResourceCost = ResourceCost {
    luts: 900,
    ffs: 700,
    bram_kbits: 18,
    dsps: 2,
};

/// Cost of one BlueSwitch match-action table (TCAM slice + action RAM).
pub const MATCH_ACTION_TABLE: ResourceCost = ResourceCost {
    luts: 9_000,
    ffs: 5_000,
    bram_kbits: 864,
    dsps: 0,
};

/// Cost of OSNT's timestamping unit.
pub const TIMESTAMP_UNIT: ResourceCost = ResourceCost {
    luts: 800,
    ffs: 1_200,
    bram_kbits: 0,
    dsps: 0,
};

/// Cost of OSNT's rate-controlled generator core.
pub const GENERATOR_CORE: ResourceCost = ResourceCost {
    luts: 4_000,
    ffs: 3_500,
    bram_kbits: 720,
    dsps: 4,
};

/// Cost of OSNT's capture/filter core.
pub const CAPTURE_CORE: ResourceCost = ResourceCost {
    luts: 3_000,
    ffs: 2_800,
    bram_kbits: 1_008,
    dsps: 0,
};

/// Cost of a statistics stage.
pub const STATS_STAGE: ResourceCost = ResourceCost {
    luts: 600,
    ffs: 900,
    bram_kbits: 0,
    dsps: 0,
};

/// Cost of a rate limiter (token bucket).
pub const RATE_LIMITER: ResourceCost = ResourceCost {
    luts: 700,
    ffs: 800,
    bram_kbits: 0,
    dsps: 1,
};

/// Cost of a delay stage (packet buffer + timer).
pub const DELAY_STAGE: ResourceCost = ResourceCost {
    luts: 500,
    ffs: 600,
    bram_kbits: 288,
    dsps: 0,
};

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::board::BoardSpec;

    /// A fully-populated reference-router-class design must fit the SUME
    /// device with room to spare (the real one uses well under half).
    #[test]
    fn router_class_design_fits_sume() {
        let total = MAC_10G.times(4)
            + PCIE_DMA
            + REG_INTERCONNECT
            + INPUT_ARBITER
            + ROUTER_LOOKUP
            + OUTPUT_QUEUES_PER_PORT.times(5)
            + STATS_STAGE;
        let sume = BoardSpec::sume();
        assert!(total.fits(&sume.resources), "{total}");
        let util = total.utilization(&sume.resources);
        assert!(util[0] < 0.25, "LUT utilization {:.1}%", util[0] * 100.0);
    }

    /// The same design must NOT fit arbitrarily small budgets — the cost
    /// model has teeth.
    #[test]
    fn costs_are_nonzero() {
        for c in [
            MAC_10G,
            PCIE_DMA,
            INPUT_ARBITER,
            SWITCH_LOOKUP,
            ROUTER_LOOKUP,
            MATCH_ACTION_TABLE,
            GENERATOR_CORE,
            CAPTURE_CORE,
        ] {
            assert!(c.luts > 0 && c.ffs > 0);
        }
    }

    /// Ordering sanity: router lookup > switch lookup > NIC lookup.
    #[test]
    fn lookup_complexity_ordering() {
        let costs = [ROUTER_LOOKUP.luts, SWITCH_LOOKUP.luts, NIC_LOOKUP.luts];
        assert!(costs.windows(2).all(|w| w[0] > w[1]), "{costs:?}");
    }
}
