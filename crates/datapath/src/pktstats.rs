//! A transparent statistics stage: counts packets and bytes per source
//! port while passing words through untouched — the per-module statistics
//! registers every reference design carries.

use netfpga_core::regs::RegisterSpace;
use netfpga_core::sim::{Module, TickContext};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{StreamRx, StreamTx};

/// Pass-through packet/byte counters, per source port plus totals.
pub struct StatsStage {
    name: String,
    input: StreamRx,
    output: StreamTx,
    per_port_packets: Vec<Counter>,
    per_port_bytes: Vec<Counter>,
    total_packets: Counter,
    total_bytes: Counter,
    /// Burst fast path: move every available word per tick instead of one.
    burst: bool,
}

/// Shared read handles onto a [`StatsStage`]'s counters.
#[derive(Debug, Clone)]
pub struct StatsHandles {
    /// Per-source-port packet counts.
    pub packets: Vec<Counter>,
    /// Per-source-port byte counts.
    pub bytes: Vec<Counter>,
    /// All packets.
    pub total_packets: Counter,
    /// All bytes.
    pub total_bytes: Counter,
}

impl StatsStage {
    /// Create a stage tracking up to `nports` source ports.
    pub fn new(name: &str, input: StreamRx, output: StreamTx, nports: usize) -> (StatsStage, StatsHandles) {
        let per_port_packets: Vec<Counter> = (0..nports).map(|_| Counter::new()).collect();
        let per_port_bytes: Vec<Counter> = (0..nports).map(|_| Counter::new()).collect();
        let total_packets = Counter::new();
        let total_bytes = Counter::new();
        let handles = StatsHandles {
            packets: per_port_packets.clone(),
            bytes: per_port_bytes.clone(),
            total_packets: total_packets.clone(),
            total_bytes: total_bytes.clone(),
        };
        (
            StatsStage {
                name: name.to_string(),
                input,
                output,
                per_port_packets,
                per_port_bytes,
                total_packets,
                total_bytes,
                burst: false,
            },
            handles,
        )
    }

    /// Enable the burst fast path: each tick passes through every word the
    /// output can accept instead of one word per cycle. Counter values are
    /// identical either way — only the cycle-level pacing changes.
    pub fn with_burst(mut self, enabled: bool) -> StatsStage {
        self.burst = enabled;
        self
    }
}

impl Module for StatsStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        loop {
            if !self.output.can_push() {
                return;
            }
            let Some(word) = self.input.pop() else { return };
            if word.sop {
                let meta = word.meta.unwrap_or_default();
                self.total_packets.incr();
                self.total_bytes.add(u64::from(meta.len));
                let p = usize::from(meta.src_port);
                if p < self.per_port_packets.len() {
                    self.per_port_packets[p].incr();
                    self.per_port_bytes[p].add(u64::from(meta.len));
                }
            }
            self.output.push(word);
            if !self.burst {
                return;
            }
        }
    }

    fn reset(&mut self) {
        for c in &self.per_port_packets {
            c.clear();
        }
        for c in &self.per_port_bytes {
            c.clear();
        }
        self.total_packets.clear();
        self.total_bytes.clear();
    }

    /// Idle when there is nothing to pass through.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop()
    }
}

/// The register view of a [`StatsHandles`]: word 0 = total packets (low 32),
/// word 4 = total bytes, then per-port packet/byte pairs. Writing any
/// offset clears all counters (write-to-clear, as the reference designs do).
pub struct StatsRegisters {
    handles: StatsHandles,
}

impl StatsRegisters {
    /// Wrap handles for mounting on an address map.
    pub fn new(handles: StatsHandles) -> StatsRegisters {
        StatsRegisters { handles }
    }
}

impl RegisterSpace for StatsRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        let idx = (offset / 4) as usize;
        match idx {
            0 => self.handles.total_packets.get() as u32,
            1 => self.handles.total_bytes.get() as u32,
            n => {
                let port = (n - 2) / 2;
                let is_bytes = (n - 2) % 2 == 1;
                match (self.handles.packets.get(port), is_bytes) {
                    (Some(_), true) => self.handles.bytes[port].get() as u32,
                    (Some(c), false) => c.get() as u32,
                    (None, _) => netfpga_core::regs::UNMAPPED_READ,
                }
            }
        }
    }

    fn write(&mut self, _offset: u32, _value: u32) {
        self.handles.total_packets.clear();
        self.handles.total_bytes.clear();
        for c in &self.handles.packets {
            c.clear();
        }
        for c in &self.handles.bytes {
            c.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::Stream;
    use netfpga_core::time::{Frequency, Time};

    #[test]
    fn counts_per_port_and_total() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, out_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let (stage, handles) = StatsStage::new("stats", in_rx, out_tx, 4);
        let (sink, cap) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, src);
        sim.add_module(clk, stage);
        sim.add_module(clk, sink);

        inject.push(vec![0u8; 100], 0);
        inject.push(vec![0u8; 200], 2);
        inject.push(vec![0u8; 300], 2);
        sim.run_until(Time::from_us(5));

        assert_eq!(cap.total_packets(), 3, "pass-through intact");
        assert_eq!(handles.total_packets.get(), 3);
        assert_eq!(handles.total_bytes.get(), 600);
        assert_eq!(handles.packets[0].get(), 1);
        assert_eq!(handles.packets[2].get(), 2);
        assert_eq!(handles.bytes[2].get(), 500);
        assert_eq!(handles.packets[1].get(), 0);

        // Register view.
        let mut regs = StatsRegisters::new(handles.clone());
        assert_eq!(regs.read(0x0), 3);
        assert_eq!(regs.read(0x4), 600);
        assert_eq!(regs.read(0x8), 1); // port 0 packets
        assert_eq!(regs.read(0x18), 2); // port 2 packets (word 2 + 2*2 = 6)
        assert_eq!(regs.read(0x1c), 500); // port 2 bytes (word 7)
        regs.write(0, 0);
        assert_eq!(handles.total_packets.get(), 0);
        assert_eq!(handles.packets[2].get(), 0);
    }
}
