//! A transparent statistics stage: counts packets and bytes per source
//! port while passing words through untouched — the per-module statistics
//! registers every reference design carries.

use netfpga_core::regs::RegisterSpace;
use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stats::Counter;
use netfpga_core::stream::{StreamRx, StreamTx};

/// Pass-through packet/byte counters, per source port plus totals.
pub struct StatsStage {
    name: String,
    input: StreamRx,
    output: StreamTx,
    per_port_packets: Vec<Counter>,
    per_port_bytes: Vec<Counter>,
    total_packets: Counter,
    total_bytes: Counter,
    /// Burst fast path: move every available word per tick instead of one.
    burst: bool,
    /// Activity-cache invalidation flag, registered on the input stream.
    wake: WakeHandle,
}

/// Shared read handles onto a [`StatsStage`]'s counters.
#[derive(Debug, Clone)]
pub struct StatsHandles {
    /// Per-source-port packet counts.
    pub packets: Vec<Counter>,
    /// Per-source-port byte counts.
    pub bytes: Vec<Counter>,
    /// All packets.
    pub total_packets: Counter,
    /// All bytes.
    pub total_bytes: Counter,
}

impl StatsHandles {
    /// Register these counters on `registry` under `prefix` (e.g.
    /// `rx_stats`): `total_packets`, `total_bytes`, and per-port
    /// `port{i}.packets` / `port{i}.bytes`. The *same* shared cells are
    /// registered, so registry reads are bit-identical to the legacy
    /// [`StatsRegisters`] view, and clears through either side agree.
    pub fn register_stats(&self, registry: &netfpga_core::telemetry::StatRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.total_packets"), &self.total_packets);
        registry.register_counter(&format!("{prefix}.total_bytes"), &self.total_bytes);
        for (i, (p, b)) in self.packets.iter().zip(&self.bytes).enumerate() {
            registry.register_counter(&format!("{prefix}.port{i}.packets"), p);
            registry.register_counter(&format!("{prefix}.port{i}.bytes"), b);
        }
    }
}

impl StatsStage {
    /// Create a stage tracking up to `nports` source ports.
    pub fn new(
        name: &str,
        input: StreamRx,
        output: StreamTx,
        nports: usize,
    ) -> (StatsStage, StatsHandles) {
        let per_port_packets: Vec<Counter> = (0..nports).map(|_| Counter::new()).collect();
        let per_port_bytes: Vec<Counter> = (0..nports).map(|_| Counter::new()).collect();
        let total_packets = Counter::new();
        let total_bytes = Counter::new();
        let handles = StatsHandles {
            packets: per_port_packets.clone(),
            bytes: per_port_bytes.clone(),
            total_packets: total_packets.clone(),
            total_bytes: total_bytes.clone(),
        };
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        (
            StatsStage {
                name: name.to_string(),
                input,
                output,
                per_port_packets,
                per_port_bytes,
                total_packets,
                total_bytes,
                burst: false,
                wake,
            },
            handles,
        )
    }

    /// Enable the burst fast path: each tick passes through every word the
    /// output can accept instead of one word per cycle. Counter values are
    /// identical either way — only the cycle-level pacing changes.
    pub fn with_burst(mut self, enabled: bool) -> StatsStage {
        self.burst = enabled;
        self
    }
}

impl Module for StatsStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &TickContext) {
        if self.burst {
            // Bulk pass-through: one borrow pair for everything movable,
            // counting packets as the words stream by.
            let total_packets = &self.total_packets;
            let total_bytes = &self.total_bytes;
            let per_port_packets = &self.per_port_packets;
            let per_port_bytes = &self.per_port_bytes;
            self.input
                .transfer_inspect(&self.output, usize::MAX, |word| {
                    if word.sop {
                        let meta = word.meta.unwrap_or_default();
                        total_packets.incr();
                        total_bytes.add(u64::from(meta.len));
                        let p = usize::from(meta.src_port);
                        if p < per_port_packets.len() {
                            per_port_packets[p].incr();
                            per_port_bytes[p].add(u64::from(meta.len));
                        }
                    }
                });
            return;
        }
        if !self.output.can_push() {
            return;
        }
        let Some(word) = self.input.pop() else { return };
        if word.sop {
            let meta = word.meta.unwrap_or_default();
            self.total_packets.incr();
            self.total_bytes.add(u64::from(meta.len));
            let p = usize::from(meta.src_port);
            if p < self.per_port_packets.len() {
                self.per_port_packets[p].incr();
                self.per_port_bytes[p].add(u64::from(meta.len));
            }
        }
        self.output.push(word);
    }

    fn reset(&mut self) {
        for c in &self.per_port_packets {
            c.clear();
        }
        for c in &self.per_port_bytes {
            c.clear();
        }
        self.total_packets.clear();
        self.total_bytes.clear();
    }

    /// Idle when there is nothing to pass through.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop()
    }

    /// Only upstream pushes can un-idle the pass-through.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

/// The register view of a [`StatsHandles`]: word 0 = total packets (low 32),
/// word 1 = total bytes, then per-port packet/byte pairs. Writing an offset
/// clears *that counter only* (per-offset write-to-clear, as the reference
/// designs do; an earlier revision cleared every counter on any write).
pub struct StatsRegisters {
    handles: StatsHandles,
}

impl StatsRegisters {
    /// Wrap handles for mounting on an address map.
    pub fn new(handles: StatsHandles) -> StatsRegisters {
        StatsRegisters { handles }
    }
}

impl RegisterSpace for StatsRegisters {
    fn read(&mut self, offset: u32) -> u32 {
        let idx = (offset / 4) as usize;
        match idx {
            0 => self.handles.total_packets.get() as u32,
            1 => self.handles.total_bytes.get() as u32,
            n => {
                let port = (n - 2) / 2;
                let is_bytes = (n - 2) % 2 == 1;
                match (self.handles.packets.get(port), is_bytes) {
                    (Some(_), true) => self.handles.bytes[port].get() as u32,
                    (Some(c), false) => c.get() as u32,
                    (None, _) => netfpga_core::regs::UNMAPPED_READ,
                }
            }
        }
    }

    fn write(&mut self, offset: u32, _value: u32) {
        let idx = (offset / 4) as usize;
        match idx {
            0 => self.handles.total_packets.clear(),
            1 => self.handles.total_bytes.clear(),
            n => {
                let port = (n - 2) / 2;
                let is_bytes = (n - 2) % 2 == 1;
                match (self.handles.packets.get(port), is_bytes) {
                    (Some(_), true) => self.handles.bytes[port].clear(),
                    (Some(c), false) => c.clear(),
                    (None, _) => {} // unmapped: dropped
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::Stream;
    use netfpga_core::time::{Frequency, Time};

    #[test]
    fn counts_per_port_and_total() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, out_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let (stage, handles) = StatsStage::new("stats", in_rx, out_tx, 4);
        let (sink, cap) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, src);
        sim.add_module(clk, stage);
        sim.add_module(clk, sink);

        inject.push(vec![0u8; 100], 0);
        inject.push(vec![0u8; 200], 2);
        inject.push(vec![0u8; 300], 2);
        sim.run_until(Time::from_us(5));

        assert_eq!(cap.total_packets(), 3, "pass-through intact");
        assert_eq!(handles.total_packets.get(), 3);
        assert_eq!(handles.total_bytes.get(), 600);
        assert_eq!(handles.packets[0].get(), 1);
        assert_eq!(handles.packets[2].get(), 2);
        assert_eq!(handles.bytes[2].get(), 500);
        assert_eq!(handles.packets[1].get(), 0);

        // Register view.
        let mut regs = StatsRegisters::new(handles.clone());
        assert_eq!(regs.read(0x0), 3);
        assert_eq!(regs.read(0x4), 600);
        assert_eq!(regs.read(0x8), 1); // port 0 packets
        assert_eq!(regs.read(0x18), 2); // port 2 packets (word 2 + 2*2 = 6)
        assert_eq!(regs.read(0x1c), 500); // port 2 bytes (word 7)
                                          // Write-to-clear is per-offset: clearing total packets leaves
                                          // every other counter alone.
        regs.write(0, 0);
        assert_eq!(handles.total_packets.get(), 0);
        assert_eq!(handles.total_bytes.get(), 600, "siblings untouched");
        assert_eq!(handles.packets[2].get(), 2, "siblings untouched");
    }

    /// Regression pin for the write-to-clear semantics: an earlier
    /// revision cleared *all* counters on any write; the reference designs
    /// clear only the addressed register. This pins the per-offset
    /// behaviour across the whole layout.
    #[test]
    fn write_to_clear_is_per_offset() {
        let (_stage, handles) = {
            let (in_tx, in_rx) = Stream::new(8, 32);
            let (out_tx, _out_rx) = Stream::new(8, 32);
            drop(in_tx);
            StatsStage::new("stats", in_rx, out_tx, 2)
        };
        handles.total_packets.add(10);
        handles.total_bytes.add(20);
        handles.packets[0].add(1);
        handles.bytes[0].add(2);
        handles.packets[1].add(3);
        handles.bytes[1].add(4);
        let mut regs = StatsRegisters::new(handles.clone());

        // Clear port 1 packets (word 2 + 2*1 = 4 -> offset 0x10) only.
        regs.write(0x10, 0);
        assert_eq!(handles.packets[1].get(), 0, "addressed counter cleared");
        assert_eq!(handles.total_packets.get(), 10);
        assert_eq!(handles.total_bytes.get(), 20);
        assert_eq!(handles.packets[0].get(), 1);
        assert_eq!(handles.bytes[0].get(), 2);
        assert_eq!(handles.bytes[1].get(), 4);

        // Clear total bytes (word 1) only.
        regs.write(0x4, 0);
        assert_eq!(handles.total_bytes.get(), 0);
        assert_eq!(handles.total_packets.get(), 10);
        assert_eq!(handles.bytes[1].get(), 4);

        // Out-of-range offsets are ignored, like unmapped writes.
        regs.write(0x100, 0);
        assert_eq!(handles.total_packets.get(), 10);
    }

    /// The registry view shares the same cells as the register view:
    /// values match bit for bit and clears are visible both ways.
    #[test]
    fn registry_shares_cells_with_registers() {
        let (_stage, handles) = {
            let (_in_tx, in_rx) = Stream::new(8, 32);
            let (out_tx, _out_rx) = Stream::new(8, 32);
            StatsStage::new("stats", in_rx, out_tx, 2)
        };
        let reg = netfpga_core::telemetry::StatRegistry::new();
        handles.register_stats(&reg, "rx_stats");
        handles.total_packets.add(5);
        handles.packets[1].add(2);
        assert_eq!(reg.get("rx_stats.total_packets"), Some(5));
        assert_eq!(reg.get("rx_stats.port1.packets"), Some(2));
        assert!(reg.clear("rx_stats.port1.packets"));
        let mut regs = StatsRegisters::new(handles);
        assert_eq!(regs.read(0x10), 0, "cleared through the registry");
        assert_eq!(regs.read(0x0), 5);
    }
}
