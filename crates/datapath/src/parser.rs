//! The header parser: extracts the fields lookup stages match on.
//!
//! Mirrors the reference designs' parse of the first bus words: Ethernet
//! addresses and type, the IPv4 5-tuple when present. Parsing never fails —
//! unknown or truncated payloads simply leave the deeper fields `None`,
//! and the lookup logic decides what to do (typically: send to CPU or
//! flood).

use netfpga_packet::arp::{ArpPacket, ArpRepr};
use netfpga_packet::ethernet::{EtherType, EthernetFrame};
use netfpga_packet::ipv4::{IpProtocol, Ipv4Packet};
use netfpga_packet::tcp::TcpPacket;
use netfpga_packet::udp::UdpPacket;
use netfpga_packet::{EthernetAddress, Ipv4Address};

/// Parsed header fields of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParsedHeaders {
    /// Destination MAC.
    pub eth_dst: EthernetAddress,
    /// Source MAC.
    pub eth_src: EthernetAddress,
    /// Effective EtherType (inner type if VLAN-tagged).
    pub ethertype: u16,
    /// VLAN ID if tagged.
    pub vlan: Option<u16>,
    /// IPv4 fields if the packet is valid IPv4.
    pub ipv4: Option<ParsedIpv4>,
    /// ARP fields if the packet is valid IPv4-over-Ethernet ARP.
    pub arp: Option<ParsedArp>,
}

/// IPv4 portion of [`ParsedHeaders`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedIpv4 {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Protocol.
    pub protocol: IpProtocol,
    /// TTL.
    pub ttl: u8,
    /// DSCP.
    pub dscp: u8,
    /// Whether the header checksum verified.
    pub checksum_ok: bool,
    /// L4 ports for TCP/UDP.
    pub l4: Option<(u16, u16)>,
}

/// ARP portion of [`ParsedHeaders`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedArp {
    /// True for request, false for reply.
    pub is_request: bool,
    /// Sender MAC.
    pub sender_mac: EthernetAddress,
    /// Sender IPv4.
    pub sender_ip: Ipv4Address,
    /// Target IPv4.
    pub target_ip: Ipv4Address,
}

impl ParsedHeaders {
    /// Parse as much of `frame` as is present and well-formed.
    pub fn parse(frame: &[u8]) -> ParsedHeaders {
        let mut out = ParsedHeaders::default();
        let Ok(eth) = EthernetFrame::new_checked(frame) else {
            return out;
        };
        out.eth_dst = eth.dst_addr();
        out.eth_src = eth.src_addr();
        out.ethertype = u16::from(eth.ethertype());
        out.vlan = eth.vlan_id();
        match eth.ethertype() {
            EtherType::Ipv4 => {
                if let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) {
                    let l4 = match ip.protocol() {
                        IpProtocol::Udp => UdpPacket::new_checked(ip.payload())
                            .ok()
                            .map(|u| (u.src_port(), u.dst_port())),
                        IpProtocol::Tcp => TcpPacket::new_checked(ip.payload())
                            .ok()
                            .map(|t| (t.src_port(), t.dst_port())),
                        _ => None,
                    };
                    out.ipv4 = Some(ParsedIpv4 {
                        src: ip.src_addr(),
                        dst: ip.dst_addr(),
                        protocol: ip.protocol(),
                        ttl: ip.ttl(),
                        dscp: ip.dscp(),
                        checksum_ok: ip.verify_checksum(),
                        l4,
                    });
                }
            }
            EtherType::Arp => {
                if let Ok(pkt) = ArpPacket::new_checked(eth.payload()) {
                    if let Ok(arp) = ArpRepr::parse(&pkt) {
                        out.arp = Some(ParsedArp {
                            is_request: arp.operation == netfpga_packet::arp::Operation::Request,
                            sender_mac: arp.source_hardware_addr,
                            sender_ip: arp.source_protocol_addr,
                            target_ip: arp.target_protocol_addr,
                        });
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// The flow 5-tuple (src ip, dst ip, proto, sport, dport) if IPv4 with
    /// L4 ports; used by classifiers and the example middlebox.
    pub fn five_tuple(&self) -> Option<(Ipv4Address, Ipv4Address, u8, u16, u16)> {
        let ip = self.ipv4?;
        let (sp, dp) = ip.l4?;
        Some((ip.src, ip.dst, ip.protocol.into(), sp, dp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_packet::PacketBuilder;
    use proptest::prelude::*;

    fn macs() -> (EthernetAddress, EthernetAddress) {
        (
            EthernetAddress::new(2, 0, 0, 0, 0, 1),
            EthernetAddress::new(2, 0, 0, 0, 0, 2),
        )
    }

    #[test]
    fn parses_udp_frame() {
        let (s, d) = macs();
        let frame = PacketBuilder::new()
            .eth(s, d)
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 1, 2))
            .ttl(9)
            .udp(4000, 53, b"q")
            .build();
        let h = ParsedHeaders::parse(&frame);
        assert_eq!(h.eth_src, s);
        assert_eq!(h.eth_dst, d);
        assert_eq!(h.ethertype, 0x0800);
        let ip = h.ipv4.unwrap();
        assert_eq!(ip.dst, Ipv4Address::new(10, 0, 1, 2));
        assert_eq!(ip.ttl, 9);
        assert!(ip.checksum_ok);
        assert_eq!(ip.l4, Some((4000, 53)));
        assert_eq!(
            h.five_tuple(),
            Some((
                Ipv4Address::new(10, 0, 0, 1),
                Ipv4Address::new(10, 0, 1, 2),
                17,
                4000,
                53
            ))
        );
    }

    #[test]
    fn parses_arp_request() {
        let (s, _d) = macs();
        let frame = PacketBuilder::arp_request(
            s,
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
        );
        let h = ParsedHeaders::parse(&frame);
        let arp = h.arp.unwrap();
        assert!(arp.is_request);
        assert_eq!(arp.sender_mac, s);
        assert_eq!(arp.target_ip, Ipv4Address::new(10, 0, 0, 2));
        assert!(h.ipv4.is_none());
        assert!(h.five_tuple().is_none());
    }

    #[test]
    fn corrupted_ipv4_checksum_flagged() {
        let (s, d) = macs();
        let mut frame = PacketBuilder::new()
            .eth(s, d)
            .ipv4(Ipv4Address::new(1, 1, 1, 1), Ipv4Address::new(2, 2, 2, 2))
            .udp(1, 2, b"")
            .build();
        frame[22] ^= 0xff; // corrupt TTL inside IP header
        let h = ParsedHeaders::parse(&frame);
        assert!(!h.ipv4.unwrap().checksum_ok);
    }

    #[test]
    fn short_and_unknown_frames_degrade_gracefully() {
        let h = ParsedHeaders::parse(&[0u8; 4]);
        assert!(h.ipv4.is_none() && h.arp.is_none());
        let (s, d) = macs();
        let frame = PacketBuilder::new()
            .eth(s, d)
            .raw(netfpga_packet::EtherType::Unknown(0x88cc), &[1, 2, 3])
            .build();
        let h = ParsedHeaders::parse(&frame);
        assert_eq!(h.ethertype, 0x88cc);
        assert!(h.ipv4.is_none());
    }

    proptest! {
        /// The parser is total: arbitrary bytes never panic, and whatever
        /// it extracts is internally consistent.
        #[test]
        fn prop_parser_total(frame in proptest::collection::vec(any::<u8>(), 0..512)) {
            let h = ParsedHeaders::parse(&frame);
            if let Some(ip) = h.ipv4 {
                prop_assert_eq!(h.ethertype, 0x0800);
                // l4 present implies a TCP/UDP protocol number.
                if ip.l4.is_some() {
                    prop_assert!(matches!(ip.protocol, IpProtocol::Udp | IpProtocol::Tcp));
                }
            }
            if h.arp.is_some() {
                prop_assert_eq!(h.ethertype, 0x0806);
            }
            prop_assert!(h.ipv4.is_none() || h.arp.is_none(), "mutually exclusive");
        }

        /// Truncating a valid frame anywhere never panics and never
        /// invents deeper layers than the bytes support.
        #[test]
        fn prop_truncation_safe(cut in 0usize..100) {
            let full = PacketBuilder::new()
                .eth(mac(1), mac(2))
                .ipv4(Ipv4Address::new(1, 2, 3, 4), Ipv4Address::new(5, 6, 7, 8))
                .udp(1000, 2000, b"payload!")
                .build();
            let cut = cut.min(full.len());
            let h = ParsedHeaders::parse(&full[..cut]);
            if cut < 14 {
                prop_assert!(h.ipv4.is_none());
            }
            if cut < 34 {
                prop_assert!(h.ipv4.is_none(), "IPv4 needs 34 bytes, had {cut}");
            }
        }
    }

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    #[test]
    fn vlan_tag_surfaces() {
        let (s, d) = macs();
        let frame = PacketBuilder::new()
            .eth(s, d)
            .vlan(42, 0)
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 2, b"")
            .build();
        let h = ParsedHeaders::parse(&frame);
        assert_eq!(h.vlan, Some(42));
        assert!(h.ipv4.is_some());
    }
}
