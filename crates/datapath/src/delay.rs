//! A fixed-delay stage: holds each packet for a configured time before
//! forwarding. Used to emulate a device-under-test for OSNT latency
//! experiments and to pad pipeline timing in composed designs.

use netfpga_core::sim::{Module, TickContext, WakeHandle};
use netfpga_core::stream::{segment, Reassembler, StreamRx, StreamTx, Word};
use netfpga_core::time::Time;
use std::collections::VecDeque;

/// Store-and-forward delay element.
pub struct DelayStage {
    name: String,
    input: StreamRx,
    output: StreamTx,
    delay: Time,
    reasm: Reassembler,
    /// (release_time, words) in arrival order.
    held: VecDeque<(Time, VecDeque<Word>)>,
    emitting: VecDeque<Word>,
    packets: u64,
    /// Activity-cache invalidation flag, registered on the input and the
    /// output (pops free the space a stalled emission waits on).
    wake: WakeHandle,
}

impl DelayStage {
    /// Hold each packet `delay` after its full arrival.
    pub fn new(name: &str, input: StreamRx, output: StreamTx, delay: Time) -> DelayStage {
        let wake = WakeHandle::new();
        input.set_wake(wake.clone());
        output.set_wake(wake.clone());
        DelayStage {
            name: name.to_string(),
            input,
            output,
            delay,
            reasm: Reassembler::new(),
            held: VecDeque::new(),
            emitting: VecDeque::new(),
            packets: 0,
            wake,
        }
    }

    /// Packets forwarded.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

impl Module for DelayStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &TickContext) {
        if let Some(word) = self.input.pop() {
            if let Some((packet, meta)) = self.reasm.push(word) {
                let words = segment(&packet, self.output.width(), meta);
                self.held.push_back((ctx.now + self.delay, words.into()));
            }
        }
        if self.emitting.is_empty() {
            if let Some(&(release, _)) = self.held.front() {
                if release <= ctx.now {
                    self.emitting = self.held.pop_front().expect("front exists").1;
                    self.packets += 1;
                }
            }
        }
        if !self.emitting.is_empty() && self.output.can_push() {
            let word = self.emitting.pop_front().expect("non-empty");
            self.output.push(word);
        }
    }

    fn reset(&mut self) {
        self.reasm = Reassembler::new();
        self.held.clear();
        self.emitting.clear();
        self.packets = 0;
    }

    /// Idle when nothing is buffered at any of the three holding points:
    /// with no word to pop, no held packet and nothing staged, a tick
    /// cannot have an effect until upstream pushes.
    fn is_quiescent(&self) -> bool {
        !self.input.can_pop() && self.held.is_empty() && self.emitting.is_empty()
    }

    /// With nothing to ingest or emit but packets waiting out the delay,
    /// the tick is a no-op until the earliest release instant — exactly
    /// the gate the emit path checks against `now`.
    fn next_activity(&self) -> Option<Time> {
        if self.input.can_pop() || !self.emitting.is_empty() {
            return None;
        }
        self.held.front().map(|&(release, _)| release)
    }

    /// External activity channels: pushes into the input, pops from the
    /// output.
    fn wake_handle(&self) -> Option<WakeHandle> {
        Some(self.wake.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::packetio::{PacketSink, PacketSource};
    use netfpga_core::sim::Simulator;
    use netfpga_core::stream::Stream;
    use netfpga_core::time::Frequency;

    fn rig(
        delay: Time,
    ) -> (
        Simulator,
        netfpga_core::packetio::InjectQueue,
        netfpga_core::packetio::CaptureBuffer,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("core", Frequency::mhz(200));
        let (in_tx, in_rx) = Stream::new(8, 32);
        let (out_tx, out_rx) = Stream::new(8, 32);
        let (src, inject) = PacketSource::new("src", in_tx);
        let stage = DelayStage::new("delay", in_rx, out_tx, delay);
        let (sink, cap) = PacketSink::new("sink", out_rx);
        sim.add_module(clk, src);
        sim.add_module(clk, stage);
        sim.add_module(clk, sink);
        (sim, inject, cap)
    }

    #[test]
    fn adds_at_least_the_configured_delay() {
        let delay = Time::from_us(3);
        let (mut sim, inject, cap) = rig(delay);
        inject.push(vec![0u8; 64], 0);
        sim.run_until(Time::from_us(10));
        let c = cap.pop().unwrap();
        let latency = c.arrival - c.meta.ingress_time;
        assert!(latency >= delay, "latency {latency}");
        assert!(
            latency < delay + Time::from_us(1),
            "latency {latency} way over"
        );
    }

    #[test]
    fn order_preserved() {
        let (mut sim, inject, cap) = rig(Time::from_us(1));
        for i in 0..10u8 {
            inject.push(vec![i; 128], 0);
        }
        sim.run_until(Time::from_us(50));
        let seq: Vec<u8> = cap.drain().iter().map(|c| c.data[0]).collect();
        assert_eq!(seq, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_passthrough() {
        let (mut sim, inject, cap) = rig(Time::ZERO);
        inject.push(vec![9u8; 256], 2);
        sim.run_until(Time::from_us(5));
        let c = cap.pop().unwrap();
        assert_eq!(c.data, vec![9u8; 256]);
        assert_eq!(c.meta.src_port, 2);
    }
}
