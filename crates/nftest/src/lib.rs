//! # netfpga-nftest
//!
//! The unified test harness: "The test environment provides unified tests
//! for simulation and hardware test, allowing simple validation of
//! designs" (paper §3).
//!
//! A test is a declarative [`TestPlan`]: frames applied to ports, frames
//! expected at ports (in order), register reads/writes, and barriers. The
//! same plan runs against any project's [`Chassis`] — in the real
//! environment the identical description drives both the HDL simulator
//! and the physical board; here the chassis plays both roles. Mismatches
//! are reported with hexdump diffs, as `nf_test.py` prints them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use netfpga_core::stream::Meta;
use netfpga_core::time::Time;
use netfpga_faults::FaultKind;
use netfpga_packet::hexdump::{hexdump, summarize};
use netfpga_phy::LinkState;
use netfpga_projects::harness::Chassis;
use std::collections::VecDeque;

/// One step of a test plan.
#[derive(Debug, Clone)]
pub enum Step {
    /// Apply a frame to a physical port.
    SendPhy {
        /// Port index.
        port: usize,
        /// Frame bytes.
        frame: Vec<u8>,
    },
    /// Expect this exact frame at a physical port (ordered per port).
    ExpectPhy {
        /// Port index.
        port: usize,
        /// Expected frame bytes.
        frame: Vec<u8>,
    },
    /// Expect this exact frame at a physical port, in any order relative
    /// to other expectations on that port.
    ExpectPhyUnordered {
        /// Port index.
        port: usize,
        /// Expected frame bytes.
        frame: Vec<u8>,
    },
    /// Send a packet up the DMA path (host → card).
    SendDma {
        /// Frame bytes.
        frame: Vec<u8>,
        /// Metadata (destination mask, source port).
        meta: Meta,
    },
    /// Expect this exact frame to arrive at the host over DMA.
    ExpectDma {
        /// Expected frame bytes.
        frame: Vec<u8>,
    },
    /// Write a register.
    RegWrite {
        /// Global address.
        addr: u32,
        /// Value to write.
        value: u32,
    },
    /// Read a register and require `(value & mask) == (expect & mask)`.
    RegExpect {
        /// Global address.
        addr: u32,
        /// Expected value.
        expect: u32,
        /// Compare mask (use `u32::MAX` for exact).
        mask: u32,
    },
    /// Run the simulation until every expectation so far is satisfied or
    /// the timeout expires.
    Barrier {
        /// Maximum simulated time to wait.
        timeout: Time,
    },
    /// Run the simulation for a fixed duration unconditionally.
    RunFor {
        /// Duration to run.
        duration: Time,
    },
    /// Inject a fault through the chassis fault plane. Fails the plan if
    /// the chassis was built without one ([`Chassis::with_faults`] with a
    /// non-inert plan).
    InjectFault {
        /// The fault to inject.
        fault: FaultKind,
    },
    /// Read a register and require `lo <= value <= hi` — the assertion
    /// shape for fault counters and other load-dependent statistics whose
    /// exact value is timing-sensitive but whose range proves the
    /// behaviour (e.g. "some frames dropped, but not all").
    ExpectCounterInRange {
        /// Global address.
        addr: u32,
        /// Lowest acceptable value (inclusive).
        lo: u32,
        /// Highest acceptable value (inclusive).
        hi: u32,
    },
    /// Require `port`'s PCS link state to be exactly `state` right now.
    /// Fails the plan if the chassis carries no recovery plane
    /// ([`FaultPlan::with_recovery`](netfpga_faults::FaultPlan::with_recovery)).
    ExpectLinkState {
        /// Port index.
        port: usize,
        /// Required state.
        state: LinkState,
    },
    /// Run the simulation until `port`'s PCS is back `Up`, or fail if
    /// that takes more than `max_cycles` core-clock cycles — the
    /// time-to-recovery assertion for autonomic-recovery plans.
    AwaitRecovery {
        /// Port index.
        port: usize,
        /// Recovery deadline, in core-clock cycles from now.
        max_cycles: u64,
    },
    /// Look up a stat by its registry path in the auto-mounted telemetry
    /// block (resolved over MMIO through the block's name table — no
    /// hardcoded addresses) and require `lo <= value <= hi`. Fails the
    /// plan if no telemetry block is mounted or the path is unknown.
    ExpectStat {
        /// Dotted registry path, e.g. `port0.mac.rx.bad_fcs`.
        path: String,
        /// Lowest acceptable value (inclusive).
        lo: u64,
        /// Highest acceptable value (inclusive).
        hi: u64,
    },
    /// Look up `flow` in the flow-monitor's heavy-hitter table (read over
    /// MMIO through [`netfpga_host::dump_flows`]) and require its packet
    /// count in `lo..=hi`. An untracked flow reads as 0 packets, so
    /// `lo == 0` asserts absence-or-quiet. Fails the plan if no
    /// flow-monitor block is mounted.
    ExpectFlow {
        /// The 5-tuple to look up.
        flow: netfpga_flowmon::FiveTuple,
        /// Lowest acceptable packet count (inclusive).
        lo: u64,
        /// Highest acceptable packet count (inclusive).
        hi: u64,
    },
    /// Wedge the DMA engine through the fault plane: a stall no timer
    /// clears — only a watchdog-driven soft reset recovers the engine.
    /// Fails the plan if the chassis was built without a fault plane.
    WedgeDma,
    /// Run the simulation until the hardware watchdog bites (its bite
    /// counter advances past its value at step entry), or fail if that
    /// takes more than `max_cycles` core-clock cycles — the
    /// time-to-recovery assertion for the reliable host-I/O plane. Fails
    /// the plan if no watchdog is attached (attach DMA under a fault plan
    /// carrying a recovery policy).
    AwaitWatchdog {
        /// Bite deadline, in core-clock cycles from now.
        max_cycles: u64,
    },
    /// Require the DMA engine's delivered-ack count to read exactly
    /// `accepted`: every sequenced packet the host accepted entered the
    /// datapath exactly once — retries filled the gaps and the sequence
    /// dedup filter swallowed the extra copies. Fails the plan if the
    /// chassis has no DMA engine.
    ExpectExactlyOnce {
        /// Distinct sequenced packets accepted by the reliable layer.
        accepted: u64,
    },
    /// Read the quantile gauge `{path}.p{q}` (or `{path}.max` when
    /// `q >= 100`) from the telemetry block and require the value in
    /// `lo..=hi` — the assertion shape for queue-occupancy histograms,
    /// whose exact percentiles are load-dependent but whose range proves
    /// the behaviour (e.g. "p99 depth stayed under the queue limit").
    ExpectQuantile {
        /// Histogram path prefix, e.g. `port0.q0.depth`.
        path: String,
        /// Percentile (50, 99, ...); 100 and above read the exact max.
        q: u32,
        /// Lowest acceptable value (inclusive).
        lo: u64,
        /// Highest acceptable value (inclusive).
        hi: u64,
    },
}

/// A named, ordered list of steps.
#[derive(Debug, Clone, Default)]
pub struct TestPlan {
    /// Test name (reported).
    pub name: String,
    steps: Vec<Step>,
}

impl TestPlan {
    /// An empty plan.
    pub fn new(name: &str) -> TestPlan {
        TestPlan {
            name: name.to_string(),
            steps: Vec::new(),
        }
    }

    /// Append: send a frame into a port.
    pub fn send_phy(mut self, port: usize, frame: Vec<u8>) -> Self {
        self.steps.push(Step::SendPhy { port, frame });
        self
    }

    /// Append: expect a frame out of a port.
    pub fn expect_phy(mut self, port: usize, frame: Vec<u8>) -> Self {
        self.steps.push(Step::ExpectPhy { port, frame });
        self
    }

    /// Append: expect a frame out of a port, order-independently.
    pub fn expect_phy_unordered(mut self, port: usize, frame: Vec<u8>) -> Self {
        self.steps.push(Step::ExpectPhyUnordered { port, frame });
        self
    }

    /// Append: host-to-card DMA packet.
    pub fn send_dma(mut self, frame: Vec<u8>, meta: Meta) -> Self {
        self.steps.push(Step::SendDma { frame, meta });
        self
    }

    /// Append: expect a card-to-host DMA packet.
    pub fn expect_dma(mut self, frame: Vec<u8>) -> Self {
        self.steps.push(Step::ExpectDma { frame });
        self
    }

    /// Append: register write.
    pub fn reg_write(mut self, addr: u32, value: u32) -> Self {
        self.steps.push(Step::RegWrite { addr, value });
        self
    }

    /// Append: masked register expectation.
    pub fn reg_expect_masked(mut self, addr: u32, expect: u32, mask: u32) -> Self {
        self.steps.push(Step::RegExpect { addr, expect, mask });
        self
    }

    /// Append: exact register expectation.
    pub fn reg_expect(self, addr: u32, expect: u32) -> Self {
        self.reg_expect_masked(addr, expect, u32::MAX)
    }

    /// Append: barrier with timeout.
    pub fn barrier(mut self, timeout: Time) -> Self {
        self.steps.push(Step::Barrier { timeout });
        self
    }

    /// Append: unconditional run.
    pub fn run_for(mut self, duration: Time) -> Self {
        self.steps.push(Step::RunFor { duration });
        self
    }

    /// Append: inject a fault through the chassis fault plane.
    pub fn inject_fault(mut self, fault: FaultKind) -> Self {
        self.steps.push(Step::InjectFault { fault });
        self
    }

    /// Append: expect a register (counter) value in `lo..=hi`.
    pub fn expect_counter_in_range(mut self, addr: u32, lo: u32, hi: u32) -> Self {
        self.steps.push(Step::ExpectCounterInRange { addr, lo, hi });
        self
    }

    /// Append: require `port`'s PCS link state to equal `state` now.
    pub fn expect_link_state(mut self, port: usize, state: LinkState) -> Self {
        self.steps.push(Step::ExpectLinkState { port, state });
        self
    }

    /// Append: run until `port`'s PCS is `Up` again, failing after
    /// `max_cycles` core-clock cycles.
    pub fn await_recovery(mut self, port: usize, max_cycles: u64) -> Self {
        self.steps.push(Step::AwaitRecovery { port, max_cycles });
        self
    }

    /// Append: expect the telemetry stat at `path` (e.g.
    /// `port0.mac.rx.bad_fcs`) to read a value in `lo..=hi`, resolved by
    /// name through the auto-mounted stat block.
    pub fn expect_stat(mut self, path: &str, lo: u64, hi: u64) -> Self {
        self.steps.push(Step::ExpectStat {
            path: path.to_string(),
            lo,
            hi,
        });
        self
    }

    /// Append: expect `flow`'s packet count in the flow-monitor table to
    /// read a value in `lo..=hi` (untracked flows read 0).
    pub fn expect_flow(mut self, flow: netfpga_flowmon::FiveTuple, lo: u64, hi: u64) -> Self {
        self.steps.push(Step::ExpectFlow { flow, lo, hi });
        self
    }

    /// Append: expect the quantile gauge `{path}.p{q}` (`{path}.max` when
    /// `q >= 100`) to read a value in `lo..=hi`.
    pub fn expect_quantile(mut self, path: &str, q: u32, lo: u64, hi: u64) -> Self {
        self.steps.push(Step::ExpectQuantile {
            path: path.to_string(),
            q,
            lo,
            hi,
        });
        self
    }

    /// Append: wedge the DMA engine (only a watchdog bite recovers it).
    pub fn wedge_dma(mut self) -> Self {
        self.steps.push(Step::WedgeDma);
        self
    }

    /// Append: run until the watchdog bites, failing after `max_cycles`
    /// core-clock cycles.
    pub fn await_watchdog(mut self, max_cycles: u64) -> Self {
        self.steps.push(Step::AwaitWatchdog { max_cycles });
        self
    }

    /// Append: expect the DMA delivered-ack count to read exactly
    /// `accepted` — the exactly-once assertion for sequenced host TX.
    pub fn expect_exactly_once(mut self, accepted: u64) -> Self {
        self.steps.push(Step::ExpectExactlyOnce { accepted });
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Outcome of running a plan.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// The plan's name.
    pub name: String,
    /// Individual checks evaluated (expectations + register expects).
    pub checks: usize,
    /// Human-readable failure descriptions; empty means pass.
    pub failures: Vec<String>,
}

impl TestReport {
    /// True when no check failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panic with a formatted report unless the test passed — the
    /// assertion used by project conformance tests.
    pub fn assert_passed(&self) {
        assert!(
            self.passed(),
            "nftest '{}' failed ({} checks, {} failures):\n{}",
            self.name,
            self.checks,
            self.failures.len(),
            self.failures.join("\n")
        );
    }
}

struct RunState {
    /// Per-port expected frames, in order.
    expect_phy: Vec<VecDeque<Vec<u8>>>,
    /// Per-port expected frames matched in any order.
    expect_phy_unordered: Vec<Vec<Vec<u8>>>,
    /// Frames received per port, not yet matched.
    got_phy: Vec<VecDeque<Vec<u8>>>,
    expect_dma: VecDeque<Vec<u8>>,
    got_dma: VecDeque<Vec<u8>>,
}

impl RunState {
    fn drain(&mut self, chassis: &mut Chassis) {
        for port in 0..chassis.nports() {
            for frame in chassis.recv(port) {
                self.got_phy[port].push_back(frame);
            }
        }
        if let Some(dma) = chassis.dma.clone() {
            while let Some((frame, _meta)) = dma.recv() {
                self.got_dma.push_back(frame.to_vec());
            }
        }
    }

    fn outstanding(&self) -> usize {
        let phy: usize = self
            .expect_phy
            .iter()
            .zip(&self.expect_phy_unordered)
            .zip(&self.got_phy)
            .map(|((e, u), g)| (e.len() + u.len()).saturating_sub(g.len()))
            .sum();
        phy + self.expect_dma.len().saturating_sub(self.got_dma.len())
    }
}

fn diff_frame(context: &str, expected: &[u8], got: &[u8]) -> Option<String> {
    if expected == got {
        return None;
    }
    Some(format!(
        "{context}: frame mismatch\n expected: {}\n{}\n got:      {}\n{}",
        summarize(expected),
        hexdump(expected),
        summarize(got),
        hexdump(got),
    ))
}

/// Run `plan` against `chassis`. Expectations are matched in order per
/// port; at the end of the plan an implicit final check reports any
/// missing or unexpected frames.
pub fn run(plan: &TestPlan, chassis: &mut Chassis) -> TestReport {
    let nports = chassis.nports();
    let mut state = RunState {
        expect_phy: vec![VecDeque::new(); nports],
        expect_phy_unordered: vec![Vec::new(); nports],
        got_phy: vec![VecDeque::new(); nports],
        expect_dma: VecDeque::new(),
        got_dma: VecDeque::new(),
    };
    let mut failures = Vec::new();
    let mut checks = 0usize;

    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            Step::SendPhy { port, frame } => chassis.send(*port, frame.clone()),
            Step::ExpectPhy { port, frame } => {
                checks += 1;
                state.expect_phy[*port].push_back(frame.clone());
            }
            Step::ExpectPhyUnordered { port, frame } => {
                checks += 1;
                state.expect_phy_unordered[*port].push(frame.clone());
            }
            Step::SendDma { frame, meta } => {
                let dma = chassis
                    .dma
                    .clone()
                    .expect("plan uses DMA but chassis has none");
                if let Err(err) = dma.send_with_meta(frame.clone(), *meta) {
                    failures.push(format!("step {i}: DMA TX refused: {err}"));
                }
            }
            Step::ExpectDma { frame } => {
                checks += 1;
                state.expect_dma.push_back(frame.clone());
            }
            Step::RegWrite { addr, value } => chassis.write32(*addr, *value),
            Step::RegExpect { addr, expect, mask } => {
                checks += 1;
                let got = chassis.read32(*addr);
                if got & mask != expect & mask {
                    failures.push(format!(
                        "step {i}: register {addr:#010x}: expected {expect:#010x} \
                         (mask {mask:#010x}), got {got:#010x}"
                    ));
                }
            }
            Step::Barrier { timeout } => {
                let deadline = chassis.sim.now() + *timeout;
                loop {
                    state.drain(chassis);
                    if state.outstanding() == 0 || chassis.sim.now() >= deadline {
                        break;
                    }
                    chassis.run_for(Time::from_us(1));
                }
            }
            Step::RunFor { duration } => {
                chassis.run_for(*duration);
                state.drain(chassis);
            }
            Step::InjectFault { fault } => match &chassis.faults {
                Some(handle) => handle.inject(fault.clone()),
                None => failures.push(format!(
                    "step {i}: InjectFault on a chassis without a fault plane \
                     (build it with a non-inert FaultPlan)"
                )),
            },
            Step::ExpectCounterInRange { addr, lo, hi } => {
                checks += 1;
                let got = chassis.read32(*addr);
                if got < *lo || got > *hi {
                    failures.push(format!(
                        "step {i}: counter {addr:#010x}: expected {lo}..={hi}, got {got}"
                    ));
                }
            }
            Step::ExpectLinkState { port, state } => {
                checks += 1;
                match chassis.link_state(*port) {
                    Some(got) if got == *state => {}
                    Some(got) => failures.push(format!(
                        "step {i}: port {port} link state: expected {state:?}, got {got:?}"
                    )),
                    None => failures.push(format!(
                        "step {i}: ExpectLinkState on a chassis without a recovery \
                         plane (build the FaultPlan with_recovery)"
                    )),
                }
            }
            Step::AwaitRecovery { port, max_cycles } => {
                checks += 1;
                match chassis.pcs_handle(*port) {
                    Some(pcs) => {
                        let period = chassis.sim.period(chassis.clk);
                        let deadline =
                            chassis.sim.now() + Time::from_ps(period.as_ps() * max_cycles);
                        let recovered = chassis.sim.run_while(deadline, move || !pcs.is_up());
                        state.drain(chassis);
                        if !recovered {
                            failures.push(format!(
                                "step {i}: port {port} did not recover within \
                                 {max_cycles} cycles"
                            ));
                        }
                    }
                    None => failures.push(format!(
                        "step {i}: AwaitRecovery on a chassis without a recovery \
                         plane (build the FaultPlan with_recovery)"
                    )),
                }
            }
            Step::ExpectStat { path, lo, hi } => {
                checks += 1;
                let table = netfpga_core::telemetry::decode_stat_block(
                    netfpga_core::telemetry::TELEMETRY_BASE,
                    |a| chassis.read32(a),
                );
                match table.and_then(|t| t.into_iter().find(|(p, _)| p == path)) {
                    Some((_, addr)) => {
                        let got = u64::from(chassis.read32(addr));
                        if got < *lo || got > *hi {
                            failures.push(format!(
                                "step {i}: stat {path:?}: expected {lo}..={hi}, got {got}"
                            ));
                        }
                    }
                    None => failures.push(format!(
                        "step {i}: stat {path:?} not present in the telemetry block \
                         (is the chassis MMIO bridge attached?)"
                    )),
                }
            }
            Step::ExpectFlow { flow, lo, hi } => {
                checks += 1;
                if chassis.read32(netfpga_flowmon::FLOWMON_BASE) != netfpga_flowmon::FLOWMON_MAGIC {
                    failures.push(format!(
                        "step {i}: ExpectFlow on a chassis without a flow-monitor \
                         block (build it with_flowmon)"
                    ));
                } else {
                    let got = netfpga_host::dump_flows(chassis)
                        .into_iter()
                        .find(|r| r.flow == *flow)
                        .map_or(0, |r| r.packets);
                    if got < *lo || got > *hi {
                        failures.push(format!(
                            "step {i}: flow {flow}: expected {lo}..={hi} packets, got {got}"
                        ));
                    }
                }
            }
            Step::WedgeDma => match &chassis.faults {
                Some(handle) => handle.inject(FaultKind::DmaWedge),
                None => failures.push(format!(
                    "step {i}: WedgeDma on a chassis without a fault plane \
                     (build it with a non-inert FaultPlan)"
                )),
            },
            Step::AwaitWatchdog { max_cycles } => {
                checks += 1;
                if !chassis.has_watchdog() {
                    failures.push(format!(
                        "step {i}: AwaitWatchdog on a chassis without a watchdog \
                         (attach DMA under a fault plan with a recovery policy)"
                    ));
                } else {
                    let baseline = chassis.watchdog_bites();
                    let period = chassis.sim.period(chassis.clk);
                    let deadline = chassis.sim.now() + Time::from_ps(period.as_ps() * max_cycles);
                    while chassis.watchdog_bites() == baseline && chassis.sim.now() < deadline {
                        chassis.run_for(Time::from_us(1));
                    }
                    state.drain(chassis);
                    if chassis.watchdog_bites() == baseline {
                        failures.push(format!(
                            "step {i}: watchdog did not bite within {max_cycles} cycles"
                        ));
                    }
                }
            }
            Step::ExpectExactlyOnce { accepted } => {
                checks += 1;
                match chassis.dma.clone() {
                    Some(dma) => {
                        let acked = dma.acked();
                        if acked != *accepted {
                            failures.push(format!(
                                "step {i}: exactly-once violated: {accepted} packets \
                                 accepted, {acked} delivered (dup discards: {})",
                                dma.dup_discards()
                            ));
                        }
                    }
                    None => failures.push(format!(
                        "step {i}: ExpectExactlyOnce on a chassis without DMA"
                    )),
                }
            }
            Step::ExpectQuantile { path, q, lo, hi } => {
                checks += 1;
                let gauge = if *q >= 100 {
                    format!("{path}.max")
                } else {
                    format!("{path}.p{q}")
                };
                let table = netfpga_core::telemetry::decode_stat_block(
                    netfpga_core::telemetry::TELEMETRY_BASE,
                    |a| chassis.read32(a),
                );
                match table.and_then(|t| t.into_iter().find(|(p, _)| *p == gauge)) {
                    Some((_, addr)) => {
                        let got = u64::from(chassis.read32(addr));
                        if got < *lo || got > *hi {
                            failures.push(format!(
                                "step {i}: quantile {gauge:?}: expected {lo}..={hi}, got {got}"
                            ));
                        }
                    }
                    None => failures.push(format!(
                        "step {i}: quantile gauge {gauge:?} not present in the \
                         telemetry block (is a flow-monitor histogram registered?)"
                    )),
                }
            }
        }
    }

    // Final settle + comparison.
    chassis.run_for(Time::from_us(10));
    state.drain(chassis);
    for port in 0..nports {
        // Unordered expectations consume matching frames from anywhere in
        // the received sequence first.
        for e in state.expect_phy_unordered[port].drain(..) {
            match state.got_phy[port].iter().position(|g| *g == e) {
                Some(pos) => {
                    state.got_phy[port].remove(pos);
                }
                None => failures.push(format!(
                    "port {port}: missing expected (unordered) frame: {}",
                    summarize(&e)
                )),
            }
        }
        let expected = &mut state.expect_phy[port];
        let got = &mut state.got_phy[port];
        let mut idx = 0;
        while let Some(e) = expected.pop_front() {
            match got.pop_front() {
                Some(g) => {
                    if let Some(d) = diff_frame(&format!("port {port} frame {idx}"), &e, &g) {
                        failures.push(d);
                    }
                }
                None => failures.push(format!(
                    "port {port}: missing expected frame {idx}: {}",
                    summarize(&e)
                )),
            }
            idx += 1;
        }
        for g in got.drain(..) {
            failures.push(format!("port {port}: unexpected frame: {}", summarize(&g)));
        }
    }
    let mut idx = 0;
    while let Some(e) = state.expect_dma.pop_front() {
        match state.got_dma.pop_front() {
            Some(g) => {
                if let Some(d) = diff_frame(&format!("DMA frame {idx}"), &e, &g) {
                    failures.push(d);
                }
            }
            None => failures.push(format!(
                "DMA: missing expected frame {idx}: {}",
                summarize(&e)
            )),
        }
        idx += 1;
    }
    for g in state.got_dma.drain(..) {
        failures.push(format!("DMA: unexpected frame: {}", summarize(&g)));
    }

    TestReport {
        name: plan.name.clone(),
        checks,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfpga_core::board::BoardSpec;
    use netfpga_core::stream::PortMask;
    use netfpga_packet::{EthernetAddress, PacketBuilder};
    use netfpga_projects::reference_nic::ReferenceNic;
    use netfpga_projects::reference_switch::{ReferenceSwitch, LOOKUP_BASE};

    fn mac(x: u8) -> EthernetAddress {
        EthernetAddress::new(2, 0, 0, 0, 0, x)
    }

    fn frame(src: u8, dst: u8) -> Vec<u8> {
        PacketBuilder::new()
            .eth(mac(src), mac(dst))
            .raw(netfpga_packet::EtherType::Ipv4, &[src; 50])
            .build()
    }

    #[test]
    fn switch_flood_plan_passes() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let f = frame(1, 2);
        let plan = TestPlan::new("switch_flood")
            .send_phy(0, f.clone())
            .expect_phy(1, f.clone())
            .expect_phy(2, f.clone())
            .expect_phy(3, f)
            .barrier(Time::from_us(50));
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 3);
    }

    #[test]
    fn wrong_expectation_fails_with_diff() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let plan = TestPlan::new("wrong")
            .send_phy(0, frame(1, 2))
            .expect_phy(1, frame(9, 9)) // wrong content
            .barrier(Time::from_us(50));
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        // Diff + 2 unexpected flood copies on ports 2 and 3.
        assert!(report.failures.iter().any(|f| f.contains("mismatch")));
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("unexpected frame")));
    }

    #[test]
    fn missing_frame_reported() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let plan = TestPlan::new("missing")
            .expect_phy(2, frame(1, 2))
            .barrier(Time::from_us(20));
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing expected frame"));
    }

    #[test]
    fn register_steps() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let f = frame(1, 2);
        let plan = TestPlan::new("regs")
            .send_phy(0, f.clone())
            .expect_phy(1, f.clone())
            .expect_phy(2, f.clone())
            .expect_phy(3, f)
            .barrier(Time::from_us(50))
            .reg_expect(LOOKUP_BASE + 4, 1) // one flood
            .reg_write(LOOKUP_BASE, 1) // flush table
            .reg_expect_masked(LOOKUP_BASE + 8, 0, 0); // masked: always true
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 5);
    }

    #[test]
    fn dma_steps_on_nic() {
        let mut nic = ReferenceNic::new(&BoardSpec::sume(), 4);
        let up = frame(5, 6);
        let down = frame(7, 8);
        let plan = TestPlan::new("nic_dma")
            .send_phy(2, up.clone())
            .expect_dma(up)
            .send_dma(
                down.clone(),
                Meta {
                    dst_ports: PortMask::single(1),
                    ..Default::default()
                },
            )
            .expect_phy(1, down)
            .barrier(Time::from_us(50));
        run(&plan, &mut nic.chassis).assert_passed();
    }

    #[test]
    fn unordered_expectations_match_any_order() {
        // The switch floods one frame to three ports; declare the three
        // expectations against the WRONG ports deliberately? No — unordered
        // is per port; instead inject two frames whose relative order on
        // one port we intentionally declare reversed.
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let f1 = frame(1, 9);
        let f2 = frame(2, 9);
        // Both flood to port 3 in order f1, f2. Ordered-reversed would
        // fail; unordered passes.
        let plan = TestPlan::new("unordered")
            .send_phy(0, f1.clone())
            .send_phy(1, f2.clone())
            .expect_phy_unordered(3, f2.clone())
            .expect_phy_unordered(3, f1.clone())
            .expect_phy_unordered(2, f1.clone())
            .expect_phy(2, f2.clone())
            .expect_phy_unordered(1, f1.clone())
            .expect_phy_unordered(0, f2)
            .barrier(Time::from_us(50));
        run(&plan, &mut sw.chassis).assert_passed();

        // The ordered version of the reversed pair fails.
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let f1 = frame(1, 9);
        let f2 = frame(2, 9);
        let plan = TestPlan::new("ordered_reversed")
            .send_phy(0, f1.clone())
            .send_phy(1, f2.clone())
            .expect_phy(3, f2)
            .expect_phy(3, f1)
            .barrier(Time::from_us(50))
            .run_for(Time::from_us(20));
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed(), "ordered mismatch must fail");
    }

    #[test]
    fn unordered_missing_frame_reported() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let plan = TestPlan::new("unordered_missing")
            .expect_phy_unordered(1, frame(7, 8))
            .barrier(Time::from_us(20));
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        assert!(report.failures[0].contains("unordered"));
    }

    #[test]
    fn fault_steps_drive_link_flap_and_counters() {
        use netfpga_faults::{faultregs, FaultPlan, FAULTS_BASE};
        let mut sw = ReferenceSwitch::with_faults(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FaultPlan::new(11),
        );
        let f = frame(1, 2);
        let plan = TestPlan::new("fault_flap")
            // Take port 0's link down, send into it: the frame is dropped
            // and counted, never forwarded.
            .inject_fault(FaultKind::LinkDown {
                port: 0,
                duration: Time::from_us(20),
            })
            .run_for(Time::from_us(1))
            .send_phy(0, f.clone())
            .run_for(Time::from_us(10))
            .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 1, 1)
            // After the flap the link recovers: traffic floods again.
            .run_for(Time::from_us(20))
            .send_phy(0, f.clone())
            .expect_phy(1, f.clone())
            .expect_phy(2, f.clone())
            .expect_phy(3, f)
            .barrier(Time::from_us(50))
            .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 1, 1);
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 5);
    }

    #[test]
    fn inject_fault_without_fault_plane_fails_the_plan() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let plan = TestPlan::new("no_plane").inject_fault(FaultKind::LinkDown {
            port: 0,
            duration: Time::from_us(1),
        });
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        assert!(report.failures[0].contains("without a fault plane"));
    }

    #[test]
    fn counter_out_of_range_reported() {
        use netfpga_faults::{faultregs, FaultPlan, FAULTS_BASE};
        let mut sw = ReferenceSwitch::with_faults(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FaultPlan::new(12),
        );
        let plan = TestPlan::new("range").expect_counter_in_range(
            FAULTS_BASE + faultregs::LINK_DOWN_DROPS,
            5,
            9,
        );
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        assert!(report.failures[0].contains("expected 5..=9, got 0"));
    }

    #[test]
    fn expect_stat_resolves_paths_by_name() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let f = frame(1, 2);
        let plan = TestPlan::new("stat_paths")
            .send_phy(0, f.clone())
            .expect_phy(1, f.clone())
            .expect_phy(2, f.clone())
            .expect_phy(3, f)
            .barrier(Time::from_us(50))
            .expect_stat("port0.mac.rx.frames", 1, 1)
            .expect_stat("port0.mac.rx.bad_fcs", 0, 0)
            .expect_stat("lookup.floods", 1, 1)
            .expect_stat("rx_stats.total_packets", 1, 1)
            // The flood leaves on three TX MACs.
            .expect_stat("port1.mac.tx.frames", 1, 1)
            .expect_stat("port3.mac.tx.frames", 1, 1);
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 9);

        // Unknown paths fail the plan with a clear message.
        let report = run(
            &TestPlan::new("bad_path").expect_stat("no.such.stat", 0, 0),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("not present"));
    }

    #[test]
    fn recovery_steps_drive_the_autonomic_plane() {
        use netfpga_faults::{FaultPlan, RecoveryPolicy};
        let policy = RecoveryPolicy {
            retrain_cycles: 400,
            holddown_cycles: 100,
            rejoin_cycles: 800,
            scrub_words_per_cycle: 0,
            ..RecoveryPolicy::default()
        };
        let mut sw = ReferenceSwitch::with_faults(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FaultPlan::new(21).with_recovery(policy),
        );
        let f = frame(1, 2);
        // Graceful degradation with no restore event anywhere: flap the
        // ingress port, watch the PCS walk Down → Up on its own, then
        // prove forwarding works again.
        let plan = TestPlan::new("autonomic_recovery")
            .expect_link_state(0, LinkState::Up)
            .inject_fault(FaultKind::LinkDown {
                port: 0,
                duration: Time::from_us(10),
            })
            .run_for(Time::from_us(1))
            .expect_link_state(0, LinkState::Down)
            // 10 us window + 0.5 us hold-down + 2 us retrain ≈ 2400 cycles.
            .await_recovery(0, 5000)
            .expect_link_state(0, LinkState::Up)
            .send_phy(0, f.clone())
            .expect_phy(1, f.clone())
            .expect_phy(2, f.clone())
            .expect_phy(3, f)
            .barrier(Time::from_us(50))
            .expect_stat("port0.pcs.downs", 1, 1)
            .expect_stat("port0.pcs.retrains", 1, 1);
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 9);
    }

    #[test]
    fn await_recovery_fails_when_the_deadline_is_too_tight() {
        use netfpga_faults::{FaultPlan, RecoveryPolicy};
        let mut sw = ReferenceSwitch::with_faults(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FaultPlan::new(22).with_recovery(RecoveryPolicy::default()),
        );
        let plan = TestPlan::new("too_tight")
            .inject_fault(FaultKind::LinkDown {
                port: 0,
                duration: Time::from_us(50),
            })
            .run_for(Time::from_us(1))
            // The down window alone is 10 000 cycles; 100 cannot suffice.
            .await_recovery(0, 100);
        let report = run(&plan, &mut sw.chassis);
        assert!(!report.passed());
        assert!(report.failures[0].contains("did not recover within 100 cycles"));
    }

    #[test]
    fn recovery_steps_without_a_recovery_plane_fail_the_plan() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let report = run(
            &TestPlan::new("no_plane_state").expect_link_state(0, LinkState::Up),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("without a recovery plane"));
        let report = run(
            &TestPlan::new("no_plane_await").await_recovery(0, 100),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("without a recovery plane"));
    }

    #[test]
    fn flow_and_quantile_steps_drive_the_flowmon_plane() {
        use netfpga_flowmon::{FiveTuple, FlowmonConfig};
        use netfpga_packet::Ipv4Address;
        let mut sw = ReferenceSwitch::with_flowmon(
            &BoardSpec::sume(),
            4,
            1024,
            Time::from_ms(100),
            false,
            FlowmonConfig::default(),
        );
        let pkt = |sport: u16| {
            PacketBuilder::new()
                .eth(mac(1), mac(2))
                .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
                .udp(sport, 80, &[0xee; 40])
                .build()
        };
        let tracked = FiveTuple {
            src_ip: u32::from_be_bytes([10, 0, 0, 1]),
            dst_ip: u32::from_be_bytes([10, 0, 0, 2]),
            src_port: 4000,
            dst_port: 80,
            proto: 17,
        };
        let absent = FiveTuple {
            src_port: 9999,
            ..tracked
        };
        let mut plan = TestPlan::new("flowmon_steps");
        for _ in 0..3 {
            plan = plan.send_phy(0, pkt(4000));
            // Each send floods to the three other ports.
            for port in 1..4 {
                plan = plan.expect_phy(port, pkt(4000));
            }
        }
        let plan = plan
            .barrier(Time::from_us(50))
            .expect_flow(tracked, 3, 3)
            .expect_flow(absent, 0, 0)
            .expect_quantile("port1.q0.depth", 99, 0, 16)
            .expect_quantile("port1.q0.depth", 100, 0, 16)
            .expect_stat("flowmon.packets", 3, 3);
        let report = run(&plan, &mut sw.chassis);
        report.assert_passed();
        assert_eq!(report.checks, 14);

        // An out-of-range flow count fails with a clear message.
        let report = run(
            &TestPlan::new("flow_range").expect_flow(tracked, 7, 9),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("expected 7..=9 packets, got 3"));
    }

    #[test]
    fn flowmon_steps_without_the_block_fail_the_plan() {
        use netfpga_flowmon::FiveTuple;
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let report = run(
            &TestPlan::new("no_block").expect_flow(FiveTuple::default(), 0, 0),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("without a flow-monitor block"));
        let report = run(
            &TestPlan::new("no_gauge").expect_quantile("port0.q0.depth", 99, 0, 10),
            &mut sw.chassis,
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("not present"));
    }

    #[test]
    #[should_panic(expected = "nftest 'boom' failed")]
    fn assert_passed_panics_on_failure() {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
        let plan = TestPlan::new("boom")
            .expect_phy(0, frame(1, 2))
            .barrier(Time::from_us(10));
        run(&plan, &mut sw.chassis).assert_passed();
    }
}
