//! A self-contained, dependency-free subset of the Criterion benchmarking
//! API.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This shim implements the API surface the
//! workspace's benches use — `Criterion`, `benchmark_group`, `throughput`,
//! `bench_function`, the `criterion_group!`/`criterion_main!` macros and
//! `black_box` — with a simple but serviceable measurement loop:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples of
//!   an automatically scaled iteration count;
//! * the median per-iteration time is reported, plus derived throughput
//!   when the group declared one;
//! * `--test` (as passed by `cargo bench -- --test` and our CI smoke step)
//!   runs every benchmark exactly once and skips measurement;
//! * a positional CLI argument filters benchmarks by substring, like real
//!   Criterion.
//!
//! Results are printed as `bench: <id> ... <median> ns/iter (...)` lines —
//! stable, grep-able output for CHANGES.md bookkeeping.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration plus CLI state; mirror of `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the CLI.
    filter: Option<String>,
    /// `--test` mode: run once, don't measure.
    test_mode: bool,
    /// Target time per sample batch.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            filter: None,
            test_mode: false,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the target measurement time per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Apply CLI arguments (`--test`, `--bench`, substring filter).
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo-bench/criterion pass that we accept and ignore.
                "--bench" | "--noplot" | "--quiet" | "--verbose" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start (or continue) a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, None, f);
        self
    }
}

/// Throughput declaration for a group; mirror of `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements (packets, edges, ...) processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &id, self.throughput, f);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; mirror of `criterion::Bencher`.
pub struct Bencher {
    /// Iterations to run in the current measurement batch.
    iters: u64,
    /// Measured wall time of the batch.
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times and record the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Run the routine on a fresh input per iteration, timing only the
    /// routine (setup cost is excluded from the recorded time).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint; mirror of `criterion::BatchSize`. The shim times
/// each routine call individually regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Setup output is small; batch many per allocation.
    #[default]
    SmallInput,
    /// Setup output is large; batch few.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

fn run_benchmark<F>(c: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench: {id} ... ok (test mode)");
        return;
    }

    // Calibrate: grow the batch until one batch takes ~1/10 of the target
    // measurement time (so sample_size batches fit in ~measurement_time).
    let mut iters: u64 = 1;
    let per_batch = c.measurement_time.as_nanos() as u64 / 10;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as u64;
        if ns >= per_batch || iters >= 1 << 30 {
            break;
        }
        // Aim directly at the target with headroom, at least doubling.
        let scaled = (iters * per_batch)
            .checked_div(ns)
            .map_or(iters * 16, |s| s.max(iters * 2));
        iters = scaled.min(1 << 30);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let gbps = n as f64 * 8.0 / median; // bits / ns == Gb/s
            format!(", {gbps:.3} Gb/s")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 * 1e3 / median; // elements/ns -> M elem/s
            format!(", {meps:.3} Melem/s")
        }
    });
    println!(
        "bench: {id} ... {median:.1} ns/iter (min {min:.1}, max {max:.1}, {iters} iters x {} samples{})",
        c.sample_size,
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group; both real-Criterion forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            ..Criterion::default()
        };
        // Would spin for a long time if not filtered out.
        c.bench_function("other", |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(50)))
        });
    }
}
