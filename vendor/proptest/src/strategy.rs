//! Value-generation strategies: the `Strategy` trait and its
//! implementations for ranges, primitives, tuples and regex-lite strings.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce random values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a pure function of the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i64(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_i64(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`, minus the parameters machinery).
pub trait Arbitrary: Sized {
    /// Produce an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with an occasional higher scalar, like proptest.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `&str` strategies are interpreted as a small regex subset:
/// `[class]{min,max}` where `class` supports literal characters, `a-z`
/// ranges and a trailing `-`. That covers the patterns the workspace uses;
/// anything else panics loudly rather than silently generating garbage.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy in proptest shim: {self:?}"));
        let len = rng.range_u64(min as u64, max as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{min,max}`; returns the expanded alphabet and bounds.
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = reps.split_once(',')?;
    let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if min > max {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` needs a char on both sides to be a range).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let w = (10usize..=12).generate(&mut r);
            assert!((10..=12).contains(&w));
            let s = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn any_option_mixes_variants() {
        let mut r = rng();
        let vals: Vec<Option<u16>> = (0..200)
            .map(|_| any::<Option<u16>>().generate(&mut r))
            .collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u8..4, any::<bool>(), 1usize..=2).generate(&mut r);
        assert!(a < 4);
        let _: bool = b;
        assert!((1..=2).contains(&c));
    }

    #[test]
    fn string_class_strategy() {
        let mut r = rng();
        let s = "[a-c9 ]{2,5}".generate(&mut r);
        assert!((2..=5).contains(&s.len()));
        assert!(s.chars().all(|c| "abc9 ".contains(c)));
        // The workspace's real pattern parses (escapes resolved by rustc).
        let big = "[a-zA-Z0-9 ,():#;\n\t-]{0,400}".generate(&mut r);
        assert!(big.len() <= 400);
    }

    #[test]
    fn just_yields_value() {
        let mut r = rng();
        assert_eq!(Just(42u8).generate(&mut r), 42);
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_regex_panics() {
        let mut r = rng();
        let _ = "(a|b)+".generate(&mut r);
    }
}
