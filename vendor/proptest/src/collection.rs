//! Collection strategies: `vec`, `btree_map` and `btree_set`, mirroring
//! `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A size specification: an exact count or a half-open range, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        rng.range_u64(self.min as u64, self.max as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

/// Strategy for `Vec<T>` with a size drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate a vector of values from `element`, sized per `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Generate a map with `size` entries (duplicate generated keys permitting;
/// like real proptest, collisions are retried a bounded number of times).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < n && attempts < 10 * (n + 1) {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Strategy for `BTreeSet<T>`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate a set with `size` elements (duplicates permitting, as above).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < 10 * (n + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    fn rng() -> TestRng {
        TestRng::for_case("collection-tests", 0)
    }

    #[test]
    fn vec_sizes_respected() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..6).generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let exact = vec(any::<u32>(), 16).generate(&mut r);
        assert_eq!(exact.len(), 16);
    }

    #[test]
    fn map_and_set_fill_to_requested_size() {
        let mut r = rng();
        // u32 keys virtually never collide, so sizes come out exact.
        let m = btree_map((any::<u32>(), 0u8..=32), 0u8..16, 4..5).generate(&mut r);
        assert_eq!(m.len(), 4);
        let s = btree_set((any::<u32>(), 0u8..=32), 3..4).generate(&mut r);
        assert_eq!(s.len(), 3);
    }
}
