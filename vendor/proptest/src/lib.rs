//! A self-contained, dependency-free subset of the `proptest` crate API.
//!
//! The netfpga-rs build environment has no network access, so the real
//! crates-io `proptest` cannot be fetched. This vendored shim implements the
//! slice of the API the workspace actually uses — integer-range strategies,
//! `any::<T>()`, tuples, `collection::{vec, btree_map, btree_set}`, a tiny
//! `[class]{m,n}` regex string strategy, and the `proptest!` /
//! `prop_assert*!` macros — on top of a deterministic splitmix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** On failure the macro reports the test name, case
//!   index and the generated inputs; inputs are not minimized.
//! * **Deterministic seeding.** Each `(test path, case index)` pair maps to
//!   a fixed seed, so failures reproduce exactly on every run and machine.
//! * **Default case count is 64** (override per-block with
//!   `proptest_config` or globally with the `PROPTEST_CASES` env var).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use test_runner::ProptestConfig;

/// Define property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn name(pat in strategy, mut other in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expands each test item inside a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.effective_cases() {
                    let mut runner = $crate::test_runner::TestRng::for_case(path, case);
                    let mut guard = $crate::test_runner::CaseGuard::new(path, case);
                    $(let $parm =
                        $crate::strategy::Strategy::generate(&$strat, &mut runner);)+
                    { $body }
                    guard.disarm();
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}
