//! Deterministic case runner support: configuration, per-case RNG seeding
//! and failure reporting.

/// Mirror of `proptest::test_runner::ProptestConfig` (the fields the
/// workspace touches, plus enough to keep struct-update syntax working).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Cases to run, honouring a `PROPTEST_CASES` environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A splitmix64 generator seeded from `(test path, case index)`: the same
/// case always sees the same inputs, on every machine and run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed for a specific case of a specific test.
    pub fn for_case(path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "zero bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        if lo == 0 && hi == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(hi - lo + 1)
        }
    }

    /// Uniform in the inclusive signed range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi as i128 - lo as i128) as u128;
        if span == u128::from(u64::MAX) {
            self.next_u64() as i64
        } else {
            let off = ((u128::from(self.next_u64()) * (span + 1)) >> 64) as i128;
            (lo as i128 + off) as i64
        }
    }
}

/// Prints the failing `(test, case)` pair if the case body panics, so a
/// deterministic repro is one `PROPTEST_CASES` run away.
#[derive(Debug)]
pub struct CaseGuard {
    path: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(path: &'static str, case: u32) -> CaseGuard {
        CaseGuard {
            path,
            case,
            armed: true,
        }
    }

    /// The case finished cleanly; stand down.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest(shim): test {} failed on case {} (seeding is \
                 deterministic; the same case reproduces on rerun)",
                self.path, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_sequence() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = r.range_u64(5, 9);
            assert!((5..=9).contains(&v));
            let s = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut r = TestRng::for_case("t", 1);
        // Must not overflow internally.
        let _ = r.range_u64(0, u64::MAX);
        let _ = r.range_i64(i64::MIN, i64::MAX);
    }
}
