//! Test and measurement with OSNT (paper §1/§3: researchers "interested in
//! test and measurement ... often fail to get a hold on commercial devices
//! due to their high cost" — OSNT is the platform's answer).
//!
//! OSNT's generator sends timestamped probe streams through an emulated
//! device-under-test (a link with configurable delay and loss); the
//! capture engine measures throughput, latency percentiles and loss, which
//! we compare against the DUT's ground truth.
//!
//! Run with: `cargo run -p netfpga-examples --bin network_tester`

use netfpga_core::board::BoardSpec;
use netfpga_core::time::{BitRate, Time};
use netfpga_phy::LinkConfig;
use netfpga_projects::osnt::{GeneratorConfig, OsntTester, Spacing};

fn measure(delay: Time, loss: f64, rate: BitRate, frames: u64) {
    let mut osnt = OsntTester::new(&BoardSpec::sume(), 2);
    let (to_board, from_board) = osnt.chassis.port_wires(0);
    osnt.chassis.add_link(
        "dut",
        from_board,
        to_board,
        LinkConfig {
            delay,
            loss_probability: loss,
            seed: 7,
            ..LinkConfig::default()
        },
    );

    osnt.generators[0].start(GeneratorConfig {
        spacing: Spacing::Uniform,
        ..GeneratorConfig::probe(1, rate, 512, frames)
    });
    let gen = osnt.generators[0].clone();
    osnt.chassis
        .run_while(Time::from_ms(50), move || !gen.done());
    osnt.chassis.run_for(Time::from_us(200)); // drain in flight

    let cap = &osnt.captures[0];
    let measured_rate = cap.measured_rate(512).unwrap_or(0.0);
    let mut lat = cap.latency_histogram();
    let lost = cap.losses(1, frames);
    println!(
        "  DUT(delay={delay}, loss={:.0}%)  offered={}",
        loss * 100.0,
        rate
    );
    println!(
        "    measured: rate={:.3} Gb/s  latency p50={} p99={}  loss={}/{} ({:.1}%)",
        measured_rate / 1e9,
        Time::from_ps(lat.percentile(50.0).unwrap_or(0)),
        Time::from_ps(lat.percentile(99.0).unwrap_or(0)),
        lost,
        frames,
        lost as f64 / frames as f64 * 100.0,
    );
}

fn main() {
    println!("OSNT network tester demo\n========================");
    println!("probe stream -> emulated DUT -> capture, vs ground truth:\n");

    println!("ideal wire:");
    measure(Time::from_ns(50), 0.0, BitRate::gbps(2), 300);

    println!("\nWAN-ish path (50 us):");
    measure(Time::from_us(50), 0.0, BitRate::gbps(1), 200);

    println!("\nlossy path (5%):");
    measure(Time::from_us(5), 0.05, BitRate::gbps(2), 500);

    println!("\nPoisson traffic against the same path:");
    let mut osnt = OsntTester::new(&BoardSpec::sume(), 2);
    let (to_board, from_board) = osnt.chassis.port_wires(0);
    osnt.chassis.add_link(
        "dut",
        from_board,
        to_board,
        LinkConfig {
            delay: Time::from_us(5),
            ..LinkConfig::default()
        },
    );
    osnt.generators[0].start(GeneratorConfig {
        spacing: Spacing::Poisson { seed: 3 },
        ..GeneratorConfig::probe(2, BitRate::gbps(1), 256, 300)
    });
    let gen = osnt.generators[0].clone();
    osnt.chassis
        .run_while(Time::from_ms(50), move || !gen.done());
    osnt.chassis.run_for(Time::from_us(200));
    let recs = osnt.captures[0].records();
    let gaps: Vec<f64> = recs
        .windows(2)
        .map(|w| (w[1].tx_time - w[0].tx_time).as_ps() as f64)
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let cv =
        (gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64).sqrt() / mean;
    println!(
        "  {} probes, inter-departure CV = {cv:.2} (≈1.0 for Poisson, 0 for CBR)",
        recs.len()
    );
    println!("\nnetwork_tester done.");
}
