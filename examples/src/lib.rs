//! Shared helpers for netfpga-rs examples.
