//! Rapid prototyping (the paper's demo, §3): build a **new** networking
//! device out of stock building blocks, writing only the logic that makes
//! it novel.
//!
//! The device here is a *packet-deduplicating middlebox*: a 4-port bump-
//! in-the-wire that suppresses duplicate packets seen within a window
//! (think: de-duplication in front of an IDS after port mirroring). The
//! only new code is the ~40-line `DedupLogic`; everything else — MACs,
//! arbiter, stage shell, output queues, scheduler, chassis — is reused
//! exactly as the reference projects use it.
//!
//! Run with: `cargo run -p netfpga-examples --bin rapid_prototyping`

use netfpga_core::board::BoardSpec;
use netfpga_core::pktbuf::PktBuf;
use netfpga_core::regs::AddressMap;
use netfpga_core::stream::{Meta, PortMask, Stream};
use netfpga_core::time::Time;
use netfpga_core::trace::{write_vcd, OccupancyProbe, Probe};
use netfpga_datapath::queues::{OutputQueues, QueueConfig};
use netfpga_datapath::sched::Fifo;
use netfpga_datapath::stage::{PacketLogic, StageAction};
use netfpga_datapath::{InputArbiter, PacketStage};
use netfpga_mem::AgingTable;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::harness::Chassis;

/// The one genuinely new block: remember a fingerprint of each packet for
/// `window`; drop re-appearances. Forwarding is port-paired (0<->1, 2<->3),
/// like a bump-in-the-wire.
struct DedupLogic {
    seen: AgingTable<u64, ()>,
    window: Time,
    duplicates: u64,
}

impl DedupLogic {
    fn fingerprint(packet: &[u8]) -> u64 {
        // FNV-1a over the whole frame: cheap and good enough for a demo.
        let mut h = 0xcbf29ce484222325u64;
        for &b in packet {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl PacketLogic for DedupLogic {
    fn process(&mut self, packet: &mut PktBuf, meta: &mut Meta, now: Time) -> StageAction {
        let fp = Self::fingerprint(packet);
        if self.seen.lookup(&fp, now).is_some() {
            self.duplicates += 1;
            return StageAction::Drop;
        }
        self.seen.insert(fp, (), now);
        let _ = self.window; // window is the table's aging limit
        meta.dst_ports = PortMask::single(meta.src_port ^ 1); // pair ports
        StageAction::Forward
    }
}

/// Assemble the middlebox: this is the whole "new project". The returned
/// probes trace the arbiter-to-stage FIFO for waveform export — free
/// debugging, exactly like the platform's simulation flow.
fn build_dedup_box(spec: &BoardSpec, window: Time) -> (Chassis, Probe) {
    let (mut chassis, io) = Chassis::new(spec, 4, AddressMap::new());
    let w = chassis.bus_width();
    let (arb_tx, arb_rx) = Stream::new(64, w);
    chassis.add_module(InputArbiter::new("input_arbiter", io.from_ports, arb_tx));
    let (probe_mod, probe) = OccupancyProbe::new("arb_to_dedup_occupancy", arb_rx.clone());
    chassis.add_module(probe_mod);
    let (stage_tx, stage_rx) = Stream::new(64, w);
    chassis.add_module(PacketStage::new(
        "dedup",
        arb_rx,
        stage_tx,
        8,
        DedupLogic {
            seen: AgingTable::new(4096, window),
            window,
            duplicates: 0,
        },
    ));
    chassis.add_module(OutputQueues::new(
        "output_queues",
        stage_rx,
        io.to_ports,
        QueueConfig::default(),
        || Box::new(Fifo),
    ));
    (chassis, probe)
}

fn main() {
    println!("Rapid prototyping: a packet-dedup middlebox from stock blocks");
    println!("==============================================================");
    let (mut device, probe) = build_dedup_box(&BoardSpec::sume(), Time::from_ms(1));
    println!("blocks reused: mac_10g x4, input_arbiter, stage shell, output_queues");
    println!("new code:      DedupLogic (~40 lines)\n");

    let frame = |seq: u8| {
        PacketBuilder::new()
            .eth(
                EthernetAddress::new(2, 0, 0, 0, 0, 1),
                EthernetAddress::new(2, 0, 0, 0, 0, 2),
            )
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(5000, 6000, &[seq; 64])
            .build()
    };

    // Send three unique packets, each duplicated three times (as a mirror
    // port would), into port 0.
    for seq in 0..3u8 {
        for _ in 0..3 {
            device.send(0, frame(seq));
        }
    }
    device.run_for(Time::from_us(50));
    let out = device.recv(1);
    println!("in:  9 frames on port 0 (3 unique x 3 copies)");
    println!(
        "out: {} frames on port 1 (duplicates suppressed)",
        out.len()
    );
    assert_eq!(out.len(), 3, "exactly the unique packets must survive");

    // The window ages out: the same packet sent much later passes again.
    device.run_for(Time::from_ms(2));
    device.send(0, frame(0));
    device.run_for(Time::from_us(50));
    let late = device.recv(1);
    println!(
        "after the 1 ms window: the old packet forwards again ({} frame)",
        late.len()
    );
    assert_eq!(late.len(), 1);

    // Export the waveform of the internal FIFO, as the real simulation
    // flow would hand the developer.
    let out = std::env::temp_dir().join("dedup_box.vcd");
    let mut file = std::fs::File::create(&out).expect("create vcd");
    write_vcd(&mut file, "dedup_box", &[probe]).expect("write vcd");
    println!("waveform of the internal FIFO written to {}", out.display());

    println!("\nA new device, built in one sitting — that is the NetFPGA demo.");
}
