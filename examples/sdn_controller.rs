//! SDN control-plane research on BlueSwitch (paper §3: "an SDN researcher
//! interested in the control plane and lacking any hardware knowledge can
//! use the BlueSwitch OpenFlow switch project as its data plane, and
//! choose to write a control plane software application to run on top").
//!
//! This example is such an application: a tiny controller that (a) installs
//! a two-table policy, (b) reroutes traffic with an atomic update while the
//! switch is under load, and (c) demonstrates why the atomic commit matters
//! by doing the same reroute naively and counting consistency violations.
//!
//! Run with: `cargo run -p netfpga-examples --bin sdn_controller`

use netfpga_core::board::BoardSpec;
use netfpga_core::stream::PortMask;
use netfpga_core::time::Time;
use netfpga_host::{BlueSwitchController, RuleSpec};
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::blueswitch::{ActionKind, BlueSwitch, BLUESWITCH_BASE};

fn traffic_frame(flow: u8) -> Vec<u8> {
    PacketBuilder::new()
        .eth(
            EthernetAddress::new(2, 0, 0, 0, 0, flow),
            EthernetAddress::new(2, 0, 0, 0, 0, 0xff),
        )
        .ipv4(
            Ipv4Address::new(10, 1, 0, flow),
            Ipv4Address::new(10, 2, 0, 1),
        )
        .udp(1000 + u16::from(flow), 80, b"payload")
        .build()
}

fn reroute(atomic: bool) -> (u32, u32, usize, usize) {
    let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 2, 128);
    let mut ctl = BlueSwitchController::new();

    // Policy v1: table 0 admits, table 1 forwards to port 1.
    let v1 = vec![
        RuleSpec::wildcard_output(0, 1, PortMask::single(1)),
        RuleSpec::wildcard_output(1, 1, PortMask::single(1)),
    ];
    // Policy v2: reroute everything to port 2.
    let v2 = vec![
        RuleSpec::wildcard_output(0, 2, PortMask::single(2)),
        RuleSpec::wildcard_output(1, 2, PortMask::single(2)),
    ];
    ctl.install_atomic(&mut sw, &v1);

    // Saturate ingress, then update mid-stream. Every MMIO write advances
    // simulated time, so packets are classified during the update.
    for i in 0..400 {
        sw.chassis.send(0, traffic_frame(i as u8));
    }
    if atomic {
        ctl.install_atomic(&mut sw, &v2);
    } else {
        ctl.install_naive(&mut sw, &v2);
    }
    sw.chassis.run_for(Time::from_us(200));

    let mixed = ctl.mixed_tag_packets(&mut sw);
    let classified = sw.chassis.read32(BLUESWITCH_BASE + 25 * 4);
    let out1 = sw.chassis.recv(1).len();
    let out2 = sw.chassis.recv(2).len();
    (classified, mixed, out1, out2)
}

fn main() {
    println!("BlueSwitch SDN controller demo\n==============================");

    // Show basic policy control first: match on L4 port, different egress.
    let mut sw = BlueSwitch::new(&BoardSpec::sume(), 4, 1, 128);
    let mut ctl = BlueSwitchController::new();
    let mut web_key = [0u8; netfpga_projects::blueswitch::KEY_WIDTH];
    let mut web_mask = [0u8; netfpga_projects::blueswitch::KEY_WIDTH];
    web_key[26..28].copy_from_slice(&80u16.to_be_bytes());
    web_mask[26..28].copy_from_slice(&[0xff, 0xff]);
    let rules = vec![
        RuleSpec::from_parts(
            0,
            10,
            web_key,
            web_mask,
            ActionKind::Output(PortMask::single(2)),
        ),
        RuleSpec::wildcard_output(0, 1, PortMask::single(1)),
    ];
    ctl.install_atomic(&mut sw, &rules);
    sw.chassis.send(0, traffic_frame(1)); // dst port 80 -> port 2
    sw.chassis.run_for(Time::from_us(20));
    println!(
        "policy: web traffic -> port 2 ({} frame), rest -> port 1 ({} frames)",
        sw.chassis.recv(2).len(),
        sw.chassis.recv(1).len()
    );

    // The consistency contrast.
    let (n_atomic, mixed_atomic, a1, a2) = reroute(true);
    println!("\natomic reroute under load:");
    println!("  classified={n_atomic}  mixed-config packets={mixed_atomic}  egress port1={a1} port2={a2}");

    let (n_naive, mixed_naive, b1, b2) = reroute(false);
    println!("naive reroute under load:");
    println!(
        "  classified={n_naive}  mixed-config packets={mixed_naive}  egress port1={b1} port2={b2}"
    );

    println!(
        "\n=> BlueSwitch's atomic commit: {mixed_atomic} packets saw a mixed configuration; \
         the naive baseline exposed {mixed_naive}."
    );
    assert_eq!(
        mixed_atomic, 0,
        "atomic update must never mix configurations"
    );
}
