//! Quickstart: bring up a simulated NetFPGA SUME with the reference NIC
//! loaded, push traffic through both directions, and read the statistics
//! registers — the "hello world" of the platform.
//!
//! Run with: `cargo run -p netfpga-examples --bin quickstart`

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_host::NicDriver;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::ReferenceNic;

fn main() {
    // 1. Pick a board. The spec carries the real SUME component inventory:
    //    Virtex-7 690T, 30 serial lanes, QDRII+ + DDR3, PCIe Gen3 x8.
    let spec = BoardSpec::sume();
    println!("Board: {} ({})", spec.platform.name(), spec.fpga);
    println!(
        "  serial: {} lanes, {} aggregate",
        spec.serial_lanes.len(),
        spec.aggregate_serial_capacity()
    );
    println!(
        "  100 GbE feasible: {}",
        spec.supports_interface(netfpga_core::time::BitRate::gbps(100), 10)
    );

    // 2. Load the reference NIC project (4 SFP+ ports) and bind its driver.
    let mut nic = ReferenceNic::new(&spec, 4);
    let mut driver = NicDriver::bind(&nic);
    println!("\nReference NIC loaded: 4 ports, DMA + MMIO attached.");

    // 3. Receive path: a peer sends UDP frames into ports 0 and 2; the
    //    driver picks them up over DMA with their ingress port.
    let peer_frame = |tag: u8| {
        PacketBuilder::new()
            .eth(
                EthernetAddress::new(2, 0, 0, 0, 0, tag),
                EthernetAddress::new(2, 0, 0, 0, 0, 0xee),
            )
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(4000, 9000, &[tag; 32])
            .build()
    };
    nic.chassis.send(0, peer_frame(0xa0));
    nic.chassis.send(2, peer_frame(0xc2));
    nic.chassis.run_for(Time::from_us(20));
    while let Some((port, frame)) = driver.receive() {
        println!(
            "  host <- port {port}: {}",
            netfpga_packet::hexdump::summarize(&frame)
        );
    }

    // 4. Transmit path: the host sends a frame out of port 3.
    let tx = PacketBuilder::new()
        .eth(
            EthernetAddress::new(2, 0, 0, 0, 0, 0xee),
            EthernetAddress::new(2, 0, 0, 0, 0, 0xa0),
        )
        .ipv4(Ipv4Address::new(10, 0, 0, 2), Ipv4Address::new(10, 0, 0, 1))
        .udp(9000, 4000, b"reply from host")
        .build();
    driver.transmit(3, tx).expect("TX ring has space");
    nic.chassis.run_for(Time::from_us(20));
    for frame in nic.chassis.recv(3) {
        println!(
            "  port 3 -> wire: {}",
            netfpga_packet::hexdump::summarize(&frame)
        );
    }

    // 5. Hardware statistics over MMIO, software stats from the driver.
    println!("\nHW rx-packet counter: {}", driver.hw_rx_packets(&mut nic));
    println!("Driver stats: {:?}", driver.stats());
    println!("MAC 0 rx: {:?}", nic.chassis.rx_mac_stats(0));
    println!("\nquickstart done.");
}
