//! Embedded code on the soft-core processor (paper §3: each project's
//! software portion "contains embedded code (for a soft-core processor)").
//!
//! A watchdog firmware is assembled from source, loaded onto the soft core
//! next to a reference switch, and left to run autonomously: it polls the
//! lookup statistics through the on-card MMIO window (zero PCIe latency)
//! and flushes the learning table when flooding crosses a threshold — all
//! without the host doing anything.
//!
//! Run with: `cargo run -p netfpga-examples --bin embedded_firmware`

use netfpga_core::board::BoardSpec;
use netfpga_core::regs::{shared, RamRegisters};
use netfpga_core::time::Time;
use netfpga_packet::{EthernetAddress, PacketBuilder};
use netfpga_projects::reference_switch::{ReferenceSwitch, LOOKUP_BASE};
use netfpga_soc::{assemble, SoftCore, MMIO_BASE};

const MAILBOX: u32 = 0x5000;

fn main() {
    println!("Embedded firmware on the soft core\n==================================");

    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    sw.chassis
        .map
        .mount("mailbox", MAILBOX, 0x100, shared(RamRegisters::new(0x100)));

    // The firmware, as the developer writes it.
    let source = format!(
        r"
            li r1, {floods}     ; lookup flood counter (MMIO window)
            li r2, {mailbox}    ; mailbox block
            li r3, {flush}      ; writing here flushes the table
            li r4, 4            ; flood threshold
        poll:
            lw r5, (r1)
            sw r5, (r2)         ; publish latest observation
            bltu r5, r4, poll
            sw r0, (r3)         ; flush!
            li r6, 1
            sw r6, 4(r2)        ; set 'flushed' flag
            halt
        ",
        floods = MMIO_BASE + LOOKUP_BASE + 4,
        mailbox = MMIO_BASE + MAILBOX,
        flush = MMIO_BASE + LOOKUP_BASE,
    );
    println!("firmware source:\n{source}");
    let program = assemble(&source).expect("assembles");
    println!("assembled: {} instructions\n", program.len());

    let cpu = SoftCore::new("watchdog", program, 256, Some(sw.chassis.map.clone()), 1);
    sw.chassis.add_module(cpu);

    // Traffic: four frames to unknown destinations = four floods.
    let mac = |x: u8| EthernetAddress::new(2, 0, 0, 0, 0, x);
    for i in 0..4u8 {
        let f = PacketBuilder::new()
            .eth(mac(1), mac(0x20 + i))
            .raw(netfpga_packet::EtherType::Ipv4, &[i; 46])
            .build();
        sw.chassis.send(0, f);
        sw.chassis.run_for(Time::from_us(10));
        println!(
            "after flood {}: mailbox snapshot = {}, flushed flag = {}",
            i + 1,
            sw.chassis.map.read(MAILBOX),
            sw.chassis.map.read(MAILBOX + 4),
        );
    }

    let table = sw.core.borrow().table_size(sw.chassis.sim.now());
    println!("\nlearning table entries after watchdog action: {table}");
    assert_eq!(sw.chassis.map.read(MAILBOX + 4), 1, "firmware flushed");
    assert_eq!(table, 0);
    println!("the card managed itself — no host, no PCIe round-trips.");
}
