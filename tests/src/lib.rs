//! Integration-test helpers; the actual tests live in tests/.
