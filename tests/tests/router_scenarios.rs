//! Router end-to-end scenarios spanning hardware datapath, PCIe models and
//! the management application: the scenarios a user of the real reference
//! router exercises on day one.

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::ParsedHeaders;
use netfpga_host::{Interface, RouterManager};
use netfpga_packet::icmpv4::{Icmpv4Packet, Icmpv4Repr, Message};
use netfpga_packet::ipv4::Ipv4Packet;
use netfpga_packet::{EthernetAddress, EthernetFrame, Ipv4Address, PacketBuilder};
use netfpga_projects::reference_router::ROUTER_BASE;
use netfpga_projects::ReferenceRouter;

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn ip(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

fn setup() -> (ReferenceRouter, RouterManager) {
    let mut r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    let interfaces = vec![
        Interface {
            port: 0,
            mac: mac(0xe0),
            ip: ip("10.0.0.1"),
            subnet: "10.0.0.0/24".parse().unwrap(),
        },
        Interface {
            port: 1,
            mac: mac(0xe1),
            ip: ip("10.0.1.1"),
            subnet: "10.0.1.0/24".parse().unwrap(),
        },
        Interface {
            port: 2,
            mac: mac(0xe2),
            ip: ip("10.0.2.1"),
            subnet: "10.0.2.0/24".parse().unwrap(),
        },
    ];
    let mut mgr = RouterManager::new(interfaces, r.cpu_port);
    mgr.configure(&mut r);
    (r, mgr)
}

/// The day-one scenario: host A arps for its gateway, pings it, then sends
/// data through it to host B, which requires the router to ARP for B.
#[test]
fn host_to_host_through_router() {
    let (mut r, mut mgr) = setup();
    let host_a = (mac(0xa1), ip("10.0.0.2"));
    let host_b = (mac(0xb1), ip("10.0.1.2"));

    // 1. A resolves the gateway.
    r.chassis.send(
        0,
        PacketBuilder::arp_request(host_a.0, host_a.1, ip("10.0.0.1")),
    );
    mgr.run(&mut r, Time::from_us(50), Time::from_us(10));
    let replies = r.chassis.recv(0);
    assert_eq!(replies.len(), 1);
    let arp = ParsedHeaders::parse(&replies[0]).arp.unwrap();
    assert_eq!(arp.sender_mac, mac(0xe0));

    // 2. A pings the gateway.
    let ping = PacketBuilder::new()
        .eth(host_a.0, mac(0xe0))
        .ipv4(host_a.1, ip("10.0.0.1"))
        .icmp(
            Icmpv4Repr {
                message: Message::EchoRequest { ident: 1, seq: 1 },
            },
            b"abc",
        )
        .build();
    r.chassis.send(0, ping);
    mgr.run(&mut r, Time::from_us(50), Time::from_us(10));
    let replies = r.chassis.recv(0);
    assert_eq!(replies.len(), 1);
    let eth = EthernetFrame::new_checked(&replies[0][..]).unwrap();
    let ipp = Ipv4Packet::new_checked(eth.payload()).unwrap();
    let icmp = Icmpv4Packet::new_checked(ipp.payload()).unwrap();
    assert_eq!(icmp.icmp_type(), 0, "echo reply");
    assert_eq!(icmp.payload(), b"abc");

    // 3. A sends data to B; the router ARPs for B, B answers, data flows.
    let data = PacketBuilder::new()
        .eth(host_a.0, mac(0xe0))
        .ipv4(host_a.1, host_b.1)
        .udp(5000, 6000, b"through the router")
        .build();
    r.chassis.send(0, data);
    mgr.run(&mut r, Time::from_us(80), Time::from_us(10));
    let out1 = r.chassis.recv(1);
    assert_eq!(out1.len(), 1, "router's ARP request for B");
    let reply = PacketBuilder::arp_reply_to(&out1[0], host_b.0, host_b.1).unwrap();
    r.chassis.send(1, reply);
    mgr.run(&mut r, Time::from_us(80), Time::from_us(10));
    let out1 = r.chassis.recv(1);
    assert_eq!(out1.len(), 1, "data released to B");
    let h = ParsedHeaders::parse(&out1[0]);
    assert_eq!(h.eth_dst, host_b.0);
    assert_eq!(h.ipv4.unwrap().dst, host_b.1);

    // 4. Subsequent packets take the hardware fast path.
    let before = r.counters.borrow().forwarded;
    for _ in 0..10 {
        let data = PacketBuilder::new()
            .eth(host_a.0, mac(0xe0))
            .ipv4(host_a.1, host_b.1)
            .udp(5000, 6000, b"fast path")
            .build();
        r.chassis.send(0, data);
    }
    mgr.run(&mut r, Time::from_us(80), Time::from_us(20));
    assert_eq!(r.chassis.recv(1).len(), 10);
    assert_eq!(r.counters.borrow().forwarded - before, 10);
    assert_eq!(mgr.stats().slow_path_forwards, 1, "only the first was slow");
}

/// A traceroute-style TTL sweep: TTL=1 elicits time-exceeded, higher TTLs
/// are forwarded with TTL-1.
#[test]
fn ttl_sweep() {
    let (mut r, mut mgr) = setup();
    r.tables.borrow_mut().arp.insert(ip("10.0.1.9"), mac(0xb9));
    for ttl in 1..=4u8 {
        let probe = PacketBuilder::new()
            .eth(mac(0xa1), mac(0xe0))
            .ipv4(ip("10.0.0.2"), ip("10.0.1.9"))
            .ttl(ttl)
            .udp(33434, 33434 + u16::from(ttl), b"trace")
            .build();
        r.chassis.send(0, probe);
    }
    mgr.run(&mut r, Time::from_us(100), Time::from_us(10));
    // TTL=1: ICMP back on port 0. TTL>=2: forwarded out port 1.
    let back = r.chassis.recv(0);
    assert_eq!(back.len(), 1);
    let h = ParsedHeaders::parse(&back[0]);
    assert_eq!(u8::from(h.ipv4.unwrap().protocol), 1, "ICMP");
    let fwd = r.chassis.recv(1);
    assert_eq!(fwd.len(), 3);
    for f in &fwd {
        let ip4 = ParsedHeaders::parse(f).ipv4.unwrap();
        assert!(ip4.checksum_ok, "checksum valid after TTL decrement");
        assert!((1..=3).contains(&ip4.ttl));
    }
    assert_eq!(mgr.stats().icmp_ttl, 1);
}

/// Register counters agree with observed datapath behaviour.
#[test]
fn hardware_counters_cross_check() {
    let (mut r, mut mgr) = setup();
    r.tables.borrow_mut().arp.insert(ip("10.0.2.9"), mac(0xc9));
    for i in 0..7u16 {
        let f = PacketBuilder::new()
            .eth(mac(0xa1), mac(0xe0))
            .ipv4(ip("10.0.0.2"), ip("10.0.2.9"))
            .udp(1000 + i, 2000, b"x")
            .build();
        r.chassis.send(0, f);
    }
    // One exception: unknown destination.
    let f = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("99.9.9.9"))
        .udp(1, 2, b"y")
        .build();
    r.chassis.send(0, f);
    mgr.run(&mut r, Time::from_us(100), Time::from_us(20));
    assert_eq!(r.chassis.recv(2).len(), 7);
    // 7 hardware-routed + 1 CPU-injected (the ICMP unreachable) — packets
    // from the CPU port count as forwarded too, as in the RTL counters.
    assert_eq!(r.chassis.read32(ROUTER_BASE + 16 * 4), 8, "forwarded");
    assert_eq!(r.chassis.read32(ROUTER_BASE + 17 * 4), 1, "to_cpu");
    assert_eq!(mgr.stats().icmp_unreachable, 1);
}

/// The router survives (and punts) garbage: truncated, non-IP, and
/// checksum-corrupt frames never wedge the pipeline.
#[test]
fn malformed_traffic_does_not_wedge() {
    let (mut r, mut mgr) = setup();
    r.tables.borrow_mut().arp.insert(ip("10.0.1.2"), mac(0xb2));
    // Garbage mixtures.
    r.chassis.send(0, vec![0xff; 32]); // short, meaningless
    r.chassis.send(
        0,
        PacketBuilder::new()
            .eth(mac(1), mac(2))
            .raw(netfpga_packet::EtherType::Unknown(0x88cc), &[0; 60])
            .build(),
    );
    let mut bad_csum = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("10.0.1.2"))
        .udp(1, 2, b"z")
        .build();
    bad_csum[24] ^= 0x55;
    r.chassis.send(0, bad_csum);
    // Then a good frame: must still forward.
    let good = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("10.0.1.2"))
        .udp(1, 2, b"good")
        .build();
    r.chassis.send(0, good);
    mgr.run(&mut r, Time::from_us(100), Time::from_us(20));
    let out = r.chassis.recv(1);
    assert_eq!(
        out.len(),
        1,
        "good frame forwarded despite garbage before it"
    );
    assert_eq!(r.counters.borrow().dropped, 1, "bad checksum dropped");
}
