//! Fault-plane integration: the acceptance criteria of the subsystem.
//!
//! * An all-zero (inert) `FaultPlan` leaves every chassis bit-for-bit
//!   identical to one built without faults — same frames, same wire
//!   timestamps, same counters.
//! * A seeded plan replays identically: same trace, counters, captures.
//! * An nftest plan shows the reference switch degrading gracefully:
//!   counted drops, no hang, recovered throughput after a link flap.
//! * DMA stall/drop windows act on the reference NIC's host path.

use netfpga_core::board::BoardSpec;
use netfpga_core::stream::{Meta, PortMask};
use netfpga_core::telemetry::EventKind;
use netfpga_core::time::Time;
use netfpga_faults::{faultregs, FaultKind, FaultPlan, RecoveryPolicy, FAULTS_BASE};
use netfpga_nftest::{run, TestPlan};
use netfpga_packet::{EtherType, EthernetAddress, PacketBuilder};
use netfpga_phy::{LinkState, PortBond};
use netfpga_projects::reference_switch::LOOKUP_BASE;
use netfpga_projects::{Chassis, ReferenceNic, ReferenceSwitch};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn frame(src: u8, dst: u8, len: usize) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .raw(EtherType::Ipv4, &vec![src; len.saturating_sub(18)])
        .build()
}

/// Per-port captures with wire timestamps.
type TimedCaptures = Vec<(usize, Vec<(Vec<u8>, Time)>)>;

/// Drive a deterministic traffic mix and capture everything with wire
/// timestamps.
fn switch_traffic(sw: &mut ReferenceSwitch) -> TimedCaptures {
    for i in 0..12u8 {
        sw.chassis.send(
            usize::from(i % 4),
            frame(i % 4, (i + 1) % 4, 80 + usize::from(i) * 40),
        );
    }
    sw.chassis.run_for(Time::from_us(200));
    (0..4).map(|p| (p, sw.chassis.recv_timed(p))).collect()
}

#[test]
fn inert_plan_is_bit_for_bit_identical_on_the_switch() {
    let spec = BoardSpec::sume();
    let mut plain = ReferenceSwitch::new(&spec, 4, 1024, Time::from_ms(100));
    let mut faulted =
        ReferenceSwitch::with_faults(&spec, 4, 1024, Time::from_ms(100), false, FaultPlan::none());
    assert!(
        faulted.chassis.faults.is_none(),
        "inert plan splices nothing"
    );

    let a = switch_traffic(&mut plain);
    let b = switch_traffic(&mut faulted);
    assert_eq!(a, b, "frames, ports and wire timestamps must match exactly");
    for p in 0..4 {
        assert_eq!(
            plain.chassis.rx_mac_stats(p),
            faulted.chassis.rx_mac_stats(p)
        );
        assert_eq!(
            plain.chassis.tx_mac_stats(p),
            faulted.chassis.tx_mac_stats(p)
        );
    }
    assert_eq!(
        plain.chassis.read32(LOOKUP_BASE + 8),
        faulted.chassis.read32(LOOKUP_BASE + 8),
        "learned-entry counts must match"
    );
}

#[test]
fn inert_plan_is_bit_for_bit_identical_on_the_nic() {
    let spec = BoardSpec::sume();
    let run_nic = |mut nic: ReferenceNic| {
        let dma = nic.chassis.dma.clone().expect("NIC has DMA");
        nic.chassis.send(2, frame(5, 6, 200));
        let _ = dma.send_with_meta(
            frame(7, 8, 150),
            Meta {
                dst_ports: PortMask::single(1),
                ..Default::default()
            },
        );
        nic.chassis.run_for(Time::from_us(100));
        let up = dma.recv();
        let down = nic.chassis.recv_timed(1);
        (up, down, dma.stats())
    };
    let a = run_nic(ReferenceNic::new(&spec, 4));
    let b = run_nic(ReferenceNic::with_faults(
        &spec,
        4,
        false,
        FaultPlan::none(),
    ));
    assert_eq!(a.0, b.0, "host-bound packet identical");
    assert_eq!(a.1, b.1, "wire-bound frame and timestamp identical");
    assert_eq!(a.2, b.2, "DMA statistics identical");
}

#[test]
fn seeded_plan_replays_identically() {
    let build = |seed| {
        let plan = FaultPlan::new(seed)
            .at(Time::ZERO, FaultKind::SetBer { port: 0, ber: 2e-5 })
            .at(
                Time::from_us(30),
                FaultKind::LinkDown {
                    port: 1,
                    duration: Time::from_us(25),
                },
            )
            .at(
                Time::from_us(80),
                FaultKind::StreamStall {
                    port: 2,
                    duration: Time::from_us(10),
                },
            );
        ReferenceSwitch::with_faults(&BoardSpec::sume(), 4, 1024, Time::from_ms(100), false, plan)
    };
    let run_once = |seed: u64| {
        let mut sw = build(seed);
        let captures = switch_traffic(&mut sw);
        let faults = sw.chassis.faults.clone().expect("armed");
        let c = faults.counters();
        (
            captures,
            faults.trace(),
            (
                c.ber_flips.get(),
                c.frames_corrupted.get(),
                c.link_down_drops.get(),
                c.stream_stall_ticks.get(),
            ),
            (0..4)
                .map(|p| sw.chassis.rx_mac_stats(p))
                .collect::<Vec<_>>(),
        )
    };
    let a = run_once(2024);
    let b = run_once(2024);
    assert_eq!(a.0, b.0, "same seed: same captures and timestamps");
    assert_eq!(a.1, b.1, "same seed: same fault trace");
    assert_eq!(a.2, b.2, "same seed: same fault counters");
    assert_eq!(a.3, b.3, "same seed: same MAC counters");

    let c = run_once(2025);
    assert!(
        a.1 == c.1,
        "trace holds only scheduled events, seed-independent"
    );
    assert_ne!(a.0, c.0, "different seed: different corruption pattern");
}

#[test]
fn nftest_plan_shows_graceful_degradation_and_recovery() {
    let mut sw = ReferenceSwitch::with_faults(
        &BoardSpec::sume(),
        4,
        1024,
        Time::from_ms(100),
        false,
        FaultPlan::new(77),
    );
    let learn = frame(9, 1, 100);
    let f = frame(1, 9, 300);
    let plan = TestPlan::new("graceful_degradation")
        // Learn: dst mac(9) lives on port 1.
        .send_phy(1, learn.clone())
        .expect_phy_unordered(0, learn.clone())
        .expect_phy_unordered(2, learn.clone())
        .expect_phy_unordered(3, learn)
        .barrier(Time::from_us(50))
        // Flap the egress link and offer traffic: dropped, counted, no hang.
        .inject_fault(FaultKind::LinkDown {
            port: 1,
            duration: Time::from_us(30),
        })
        .run_for(Time::from_us(1))
        .send_phy(0, f.clone())
        .send_phy(0, f.clone())
        .run_for(Time::from_us(20))
        .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 2, 2)
        // Let the flap end; throughput recovers on the same port.
        .run_for(Time::from_us(30))
        .send_phy(0, f.clone())
        .expect_phy(1, f)
        .barrier(Time::from_us(60))
        .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 2, 2)
        .expect_counter_in_range(FAULTS_BASE + faultregs::EVENTS_APPLIED, 1, 1);
    let report = run(&plan, &mut sw.chassis);
    report.assert_passed();
}

/// Tentpole: with a recovery plane attached, a link flap *and* a lane
/// loss heal with **no** restore events anywhere in the plan — the PCS
/// retrain state machine re-acquires the flapped link, and the re-bond
/// policy brings the lane-lossed port back up on its survivors.
#[test]
fn recovery_plane_heals_flap_and_lane_loss_without_restore_events() {
    let policy = RecoveryPolicy {
        retrain_cycles: 400,  // 2 us at 200 MHz
        holddown_cycles: 100, // 500 ns
        rejoin_cycles: 800,
        scrub_words_per_cycle: 0,
        ..RecoveryPolicy::default()
    };
    let plan = FaultPlan::new(13)
        .bond(2, PortBond::ethernet_40g())
        .at(
            Time::from_us(20),
            FaultKind::LinkDown {
                port: 1,
                duration: Time::from_us(10),
            },
        )
        .at(
            Time::from_us(20),
            FaultKind::LaneLoss {
                port: 2,
                lanes_lost: 2,
            },
        )
        .with_recovery(policy);
    assert!(
        !plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::LaneRestore { .. })),
        "the schedule must not help: no restore events"
    );
    let mut sw =
        ReferenceSwitch::with_faults(&BoardSpec::sume(), 4, 1024, Time::from_ms(100), false, plan);

    // Learn: mac(1) lives on port 1, mac(2) on port 2.
    sw.chassis.send(1, frame(1, 0, 100));
    sw.chassis.send(2, frame(2, 0, 100));
    sw.chassis.run_for(Time::from_us(10));
    for p in 0..4 {
        sw.chassis.recv(p);
    }
    assert_eq!(sw.chassis.link_state(1), Some(LinkState::Up));

    // Into the fault window: unicast toward both wounded ports.
    sw.chassis.run_for(Time::from_us(15)); // now at 25 us
    assert_eq!(
        sw.chassis.link_state(1),
        Some(LinkState::Down),
        "flap seen by the PCS"
    );
    // Port 2's loss landed 5 us ago: hold-down (0.5 us) + retrain (2 us)
    // have already run, so it is *back up* — on the surviving lanes.
    assert_eq!(
        sw.chassis.link_state(2),
        Some(LinkState::Up),
        "already re-bonded"
    );
    sw.chassis.send(0, frame(0, 1, 200));
    sw.chassis.run_for(Time::from_us(2));
    assert!(sw.chassis.recv(1).is_empty(), "dropped while down");
    let faults = sw.chassis.faults.clone().expect("armed");
    assert!(faults.counters().link_down_drops.get() >= 1);

    // Give the window time to close and the PCS time to hold down and
    // retrain (signal back at 30 us; +0.5 us hold-down +2 us alignment).
    sw.chassis.run_for(Time::from_us(20)); // now at 47 us
    assert_eq!(
        sw.chassis.link_state(1),
        Some(LinkState::Up),
        "flap healed by retrain"
    );
    assert_eq!(sw.chassis.link_state(2), Some(LinkState::Up), "re-bonded");
    let pcs2 = sw.chassis.pcs_handle(2).expect("recovery plane");
    assert_eq!(pcs2.bonded_lanes(), 2, "running on the surviving lanes");
    assert_eq!(pcs2.counters().rebonds.get(), 1);

    // Forwarding works again on both ports, purely autonomically.
    sw.chassis.send(0, frame(0, 1, 300));
    sw.chassis.send(0, frame(0, 2, 300));
    sw.chassis.run_for(Time::from_us(20));
    assert_eq!(
        sw.chassis.recv(1),
        vec![frame(0, 1, 300)],
        "flapped port forwards"
    );
    assert_eq!(
        sw.chassis.recv(2),
        vec![frame(0, 2, 300)],
        "degraded port forwards"
    );

    // The transitions all reached the chassis event ring, stamped by port.
    let evs = sw.chassis.events.pending();
    let p1: Vec<EventKind> = evs.iter().filter(|e| e.port == 1).map(|e| e.kind).collect();
    let p2: Vec<EventKind> = evs.iter().filter(|e| e.port == 2).map(|e| e.kind).collect();
    assert_eq!(
        p1,
        [EventKind::LinkDown, EventKind::Retrain, EventKind::LinkUp]
    );
    assert_eq!(
        p2,
        [EventKind::LinkDown, EventKind::Retrain, EventKind::LinkUp]
    );
    assert_eq!(
        evs.iter()
            .find(|e| e.port == 2 && e.kind == EventKind::LinkUp)
            .unwrap()
            .data,
        2
    );

    // And the registry carries the per-port PCS statistics.
    let stats = netfpga_host::dump_stats(&mut sw.chassis);
    assert_eq!(stats["port1.pcs.downs"], 1);
    assert_eq!(stats["port1.pcs.retrains"], 1);
    assert_eq!(stats["port2.pcs.rebonds"], 1);
    assert_eq!(stats["port1.pcs.state"], LinkState::Up.code());
}

/// Satellite: the event ring drops on overflow by design, and the drop
/// count is surfaced as `events.dropped` in the telemetry registry.
#[test]
fn event_ring_overflow_is_counted_in_telemetry() {
    let (mut chassis, _io) = Chassis::with_faults(
        &BoardSpec::sume(),
        1,
        netfpga_core::regs::AddressMap::new(),
        false,
        FaultPlan::none(),
    );
    assert_eq!(chassis.telemetry.get("events.dropped"), Some(0));
    // The chassis ring holds 64 events; push 70 straight into it.
    for i in 0..70u32 {
        chassis.events.push(netfpga_core::telemetry::Event {
            kind: EventKind::Fault,
            port: 0,
            data: i,
            at: Time::ZERO,
        });
    }
    assert_eq!(chassis.telemetry.get("events.dropped"), Some(6));
    chassis.attach_mmio();
    let stats = netfpga_host::dump_stats(&mut chassis);
    assert_eq!(stats["events.dropped"], 6, "drop count visible host-side");
}

/// Satellite: BlueSwitch table consistency under TCAM upsets. The whole
/// double-banked pipeline is registered with the fault plane as memory
/// `"flow_tcam"` (parity — detect, never repair), so scheduled `MemFlip`
/// events corrupt live key cells. The atomic-update guarantee must
/// survive: a corrupted rule can only *miss* (the packet falls through to
/// a lower-priority table or the table-miss punt), and no packet ever
/// sees rules of two configuration versions — even while a shadow-write
/// plus commit runs after the upset landed.
#[test]
fn blueswitch_tcam_upsets_never_mix_configurations() {
    use netfpga_mem::{TcamEntry, TernaryKey};
    use netfpga_projects::blueswitch::{
        ActionKind, BlueSwitch, FlowAction, FlowKeyBuilder, KEY_WIDTH,
    };

    // Flat upset index space: (table * 2 + bank) * capacity + slot.
    // Index 32 = table 1, active bank 0, slot 0; index 40 is an empty slot
    // of the same bank (a harmless upset in an invalid row).
    let plan = FaultPlan::new(7)
        .at(
            Time::from_us(30),
            FaultKind::MemFlip {
                memory: "flow_tcam".into(),
                index: 32,
                bit: 0,
            },
        )
        .at(
            Time::from_us(30),
            FaultKind::MemFlip {
                memory: "flow_tcam".into(),
                index: 40,
                bit: 3,
            },
        );
    let mut sw = BlueSwitch::with_faults(&BoardSpec::sume(), 4, 2, 16, plan);

    // Config v1 (tag 1): table 0 catches everything to port 1; table 1
    // steers port-0 ingress to port 2 (last matching table wins).
    let out = |p: u8, tag: u64| FlowAction {
        kind: ActionKind::Output(PortMask::single(p)),
        tag,
    };
    sw.pipeline.borrow_mut().write_direct(
        0,
        TcamEntry {
            key: TernaryKey::wildcard(KEY_WIDTH),
            priority: 0,
            value: out(1, 1),
        },
    );
    sw.pipeline.borrow_mut().write_direct(
        1,
        TcamEntry {
            key: FlowKeyBuilder::new().in_port(0).build(),
            priority: 1,
            value: out(2, 1),
        },
    );

    // Before the upset: the table-1 rule wins.
    sw.chassis.send(0, frame(1, 2, 100));
    sw.chassis.run_for(Time::from_us(10));
    assert_eq!(sw.chassis.recv(2).len(), 1, "steered by table 1");

    // The upset flips value-plane bit 0 of the table-1 key — its in_port
    // byte — so port-0 traffic now *misses* table 1 and falls through to
    // the catch-all. Degraded, fail-safe, and tag-consistent.
    sw.chassis.run_for(Time::from_us(25)); // past the 30 us upsets
    sw.chassis.send(0, frame(1, 2, 100));
    sw.chassis.run_for(Time::from_us(10));
    assert!(
        sw.chassis.recv(2).is_empty(),
        "corrupted rule no longer matches"
    );
    assert_eq!(sw.chassis.recv(1).len(), 1, "fell through to the catch-all");

    // An atomic update still lands cleanly after the upset: shadow-write
    // config v2 (tag 2) into both tables and commit.
    {
        let mut p = sw.pipeline.borrow_mut();
        p.clear_shadow();
        for t in 0..2 {
            p.write_shadow(
                t,
                TcamEntry {
                    key: TernaryKey::wildcard(KEY_WIDTH),
                    priority: 0,
                    value: out(3, 2),
                },
            );
        }
        p.commit();
    }
    sw.chassis.send(0, frame(1, 2, 100));
    sw.chassis.run_for(Time::from_us(10));
    assert_eq!(sw.chassis.recv(3).len(), 1, "config v2 live after commit");

    // The invariant under fire, end to end: every packet classified, none
    // ever saw mixed tags; the landed upset was detected (parity), the
    // empty-slot upset was harmless — all visible host-side.
    let c = *sw.counters.borrow();
    assert_eq!(c.packets, 3);
    assert_eq!(c.matched, 3);
    assert_eq!(
        c.mixed_tag_packets, 0,
        "atomic semantics survive TCAM upsets"
    );
    let stats = netfpga_host::dump_stats(&mut sw.chassis);
    assert_eq!(stats["faults.mem.detected"], 1);
    assert_eq!(stats["faults.mem.missed"], 1);
    assert_eq!(stats["blueswitch.mixed_tag_packets"], 0);
}

#[test]
fn dma_windows_gate_the_nic_host_path() {
    let plan = FaultPlan::new(5).at(
        Time::from_us(10),
        FaultKind::DmaDrop {
            duration: Time::from_us(40),
        },
    );
    let mut nic = ReferenceNic::with_faults(&BoardSpec::sume(), 4, false, plan);
    let dma = nic.chassis.dma.clone().expect("NIC has DMA");
    let faults = nic.chassis.faults.clone().expect("armed");

    // Inside the drop window: the host-bound packet vanishes, counted.
    nic.chassis.run_for(Time::from_us(15));
    nic.chassis.send(0, frame(3, 4, 120));
    nic.chassis.run_for(Time::from_us(20));
    assert!(dma.recv().is_none(), "dropped in the window");
    assert_eq!(faults.dma_gate().dropped(), 1);

    // After the window: traffic flows again.
    nic.chassis.run_for(Time::from_us(30));
    nic.chassis.send(0, frame(3, 4, 120));
    nic.chassis.run_for(Time::from_us(30));
    assert!(dma.recv().is_some(), "recovered after the window");
    assert_eq!(faults.dma_gate().dropped(), 1);
}

#[test]
fn fault_registers_visible_over_mmio_on_plain_chassis() {
    // The fault block mounts like any project register block, so host
    // software sees fault statistics through the same MMIO path.
    let (mut chassis, _io) = Chassis::with_faults(
        &BoardSpec::sume(),
        2,
        netfpga_core::regs::AddressMap::new(),
        false,
        FaultPlan::new(1).at(
            Time::ZERO,
            FaultKind::LinkDown {
                port: 0,
                duration: Time::from_us(5),
            },
        ),
    );
    chassis.attach_mmio();
    chassis.send(0, frame(1, 2, 100));
    chassis.run_for(Time::from_us(3));
    assert_eq!(chassis.read32(FAULTS_BASE + faultregs::LINK_DOWN_DROPS), 1);
    assert_eq!(chassis.read32(FAULTS_BASE + faultregs::EVENTS_APPLIED), 1);
}
