//! Fault-plane integration: the acceptance criteria of the subsystem.
//!
//! * An all-zero (inert) `FaultPlan` leaves every chassis bit-for-bit
//!   identical to one built without faults — same frames, same wire
//!   timestamps, same counters.
//! * A seeded plan replays identically: same trace, counters, captures.
//! * An nftest plan shows the reference switch degrading gracefully:
//!   counted drops, no hang, recovered throughput after a link flap.
//! * DMA stall/drop windows act on the reference NIC's host path.

use netfpga_core::board::BoardSpec;
use netfpga_core::stream::{Meta, PortMask};
use netfpga_core::time::Time;
use netfpga_faults::{faultregs, FaultKind, FaultPlan, FAULTS_BASE};
use netfpga_nftest::{run, TestPlan};
use netfpga_packet::{EtherType, EthernetAddress, PacketBuilder};
use netfpga_projects::reference_switch::LOOKUP_BASE;
use netfpga_projects::{Chassis, ReferenceNic, ReferenceSwitch};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn frame(src: u8, dst: u8, len: usize) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .raw(EtherType::Ipv4, &vec![src; len.saturating_sub(18)])
        .build()
}

/// Per-port captures with wire timestamps.
type TimedCaptures = Vec<(usize, Vec<(Vec<u8>, Time)>)>;

/// Drive a deterministic traffic mix and capture everything with wire
/// timestamps.
fn switch_traffic(sw: &mut ReferenceSwitch) -> TimedCaptures {
    for i in 0..12u8 {
        sw.chassis.send(usize::from(i % 4), frame(i % 4, (i + 1) % 4, 80 + usize::from(i) * 40));
    }
    sw.chassis.run_for(Time::from_us(200));
    (0..4).map(|p| (p, sw.chassis.recv_timed(p))).collect()
}

#[test]
fn inert_plan_is_bit_for_bit_identical_on_the_switch() {
    let spec = BoardSpec::sume();
    let mut plain = ReferenceSwitch::new(&spec, 4, 1024, Time::from_ms(100));
    let mut faulted = ReferenceSwitch::with_faults(
        &spec,
        4,
        1024,
        Time::from_ms(100),
        false,
        FaultPlan::none(),
    );
    assert!(faulted.chassis.faults.is_none(), "inert plan splices nothing");

    let a = switch_traffic(&mut plain);
    let b = switch_traffic(&mut faulted);
    assert_eq!(a, b, "frames, ports and wire timestamps must match exactly");
    for p in 0..4 {
        assert_eq!(plain.chassis.rx_mac_stats(p), faulted.chassis.rx_mac_stats(p));
        assert_eq!(plain.chassis.tx_mac_stats(p), faulted.chassis.tx_mac_stats(p));
    }
    assert_eq!(
        plain.chassis.read32(LOOKUP_BASE + 8),
        faulted.chassis.read32(LOOKUP_BASE + 8),
        "learned-entry counts must match"
    );
}

#[test]
fn inert_plan_is_bit_for_bit_identical_on_the_nic() {
    let spec = BoardSpec::sume();
    let run_nic = |mut nic: ReferenceNic| {
        let dma = nic.chassis.dma.clone().expect("NIC has DMA");
        nic.chassis.send(2, frame(5, 6, 200));
        dma.send_with_meta(
            frame(7, 8, 150),
            Meta { dst_ports: PortMask::single(1), ..Default::default() },
        );
        nic.chassis.run_for(Time::from_us(100));
        let up = dma.recv();
        let down = nic.chassis.recv_timed(1);
        (up, down, dma.stats())
    };
    let a = run_nic(ReferenceNic::new(&spec, 4));
    let b = run_nic(ReferenceNic::with_faults(&spec, 4, false, FaultPlan::none()));
    assert_eq!(a.0, b.0, "host-bound packet identical");
    assert_eq!(a.1, b.1, "wire-bound frame and timestamp identical");
    assert_eq!(a.2, b.2, "DMA statistics identical");
}

#[test]
fn seeded_plan_replays_identically() {
    let build = |seed| {
        let plan = FaultPlan::new(seed)
            .at(Time::ZERO, FaultKind::SetBer { port: 0, ber: 2e-5 })
            .at(Time::from_us(30), FaultKind::LinkDown { port: 1, duration: Time::from_us(25) })
            .at(Time::from_us(80), FaultKind::StreamStall { port: 2, duration: Time::from_us(10) });
        ReferenceSwitch::with_faults(&BoardSpec::sume(), 4, 1024, Time::from_ms(100), false, plan)
    };
    let run_once = |seed: u64| {
        let mut sw = build(seed);
        let captures = switch_traffic(&mut sw);
        let faults = sw.chassis.faults.clone().expect("armed");
        let c = faults.counters();
        (
            captures,
            faults.trace(),
            (
                c.ber_flips.get(),
                c.frames_corrupted.get(),
                c.link_down_drops.get(),
                c.stream_stall_ticks.get(),
            ),
            (0..4).map(|p| sw.chassis.rx_mac_stats(p)).collect::<Vec<_>>(),
        )
    };
    let a = run_once(2024);
    let b = run_once(2024);
    assert_eq!(a.0, b.0, "same seed: same captures and timestamps");
    assert_eq!(a.1, b.1, "same seed: same fault trace");
    assert_eq!(a.2, b.2, "same seed: same fault counters");
    assert_eq!(a.3, b.3, "same seed: same MAC counters");

    let c = run_once(2025);
    assert!(a.1 == c.1, "trace holds only scheduled events, seed-independent");
    assert_ne!(a.0, c.0, "different seed: different corruption pattern");
}

#[test]
fn nftest_plan_shows_graceful_degradation_and_recovery() {
    let mut sw = ReferenceSwitch::with_faults(
        &BoardSpec::sume(),
        4,
        1024,
        Time::from_ms(100),
        false,
        FaultPlan::new(77),
    );
    let learn = frame(9, 1, 100);
    let f = frame(1, 9, 300);
    let plan = TestPlan::new("graceful_degradation")
        // Learn: dst mac(9) lives on port 1.
        .send_phy(1, learn.clone())
        .expect_phy_unordered(0, learn.clone())
        .expect_phy_unordered(2, learn.clone())
        .expect_phy_unordered(3, learn)
        .barrier(Time::from_us(50))
        // Flap the egress link and offer traffic: dropped, counted, no hang.
        .inject_fault(FaultKind::LinkDown { port: 1, duration: Time::from_us(30) })
        .run_for(Time::from_us(1))
        .send_phy(0, f.clone())
        .send_phy(0, f.clone())
        .run_for(Time::from_us(20))
        .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 2, 2)
        // Let the flap end; throughput recovers on the same port.
        .run_for(Time::from_us(30))
        .send_phy(0, f.clone())
        .expect_phy(1, f)
        .barrier(Time::from_us(60))
        .expect_counter_in_range(FAULTS_BASE + faultregs::LINK_DOWN_DROPS, 2, 2)
        .expect_counter_in_range(FAULTS_BASE + faultregs::EVENTS_APPLIED, 1, 1);
    let report = run(&plan, &mut sw.chassis);
    report.assert_passed();
}

#[test]
fn dma_windows_gate_the_nic_host_path() {
    let plan = FaultPlan::new(5)
        .at(Time::from_us(10), FaultKind::DmaDrop { duration: Time::from_us(40) });
    let mut nic = ReferenceNic::with_faults(&BoardSpec::sume(), 4, false, plan);
    let dma = nic.chassis.dma.clone().expect("NIC has DMA");
    let faults = nic.chassis.faults.clone().expect("armed");

    // Inside the drop window: the host-bound packet vanishes, counted.
    nic.chassis.run_for(Time::from_us(15));
    nic.chassis.send(0, frame(3, 4, 120));
    nic.chassis.run_for(Time::from_us(20));
    assert!(dma.recv().is_none(), "dropped in the window");
    assert_eq!(faults.dma_gate().dropped(), 1);

    // After the window: traffic flows again.
    nic.chassis.run_for(Time::from_us(30));
    nic.chassis.send(0, frame(3, 4, 120));
    nic.chassis.run_for(Time::from_us(30));
    assert!(dma.recv().is_some(), "recovered after the window");
    assert_eq!(faults.dma_gate().dropped(), 1);
}

#[test]
fn fault_registers_visible_over_mmio_on_plain_chassis() {
    // The fault block mounts like any project register block, so host
    // software sees fault statistics through the same MMIO path.
    let (mut chassis, _io) = Chassis::with_faults(
        &BoardSpec::sume(),
        2,
        netfpga_core::regs::AddressMap::new(),
        false,
        FaultPlan::new(1).at(
            Time::ZERO,
            FaultKind::LinkDown { port: 0, duration: Time::from_us(5) },
        ),
    );
    chassis.attach_mmio();
    chassis.send(0, frame(1, 2, 100));
    chassis.run_for(Time::from_us(3));
    assert_eq!(chassis.read32(FAULTS_BASE + faultregs::LINK_DOWN_DROPS), 1);
    assert_eq!(chassis.read32(FAULTS_BASE + faultregs::EVENTS_APPLIED), 1);
}
