//! Topology tests: the chassis's port wires spliced back into other ports
//! create real multi-hop paths through a single design — including the
//! classic misconfiguration, a routing loop, which the TTL mechanism must
//! contain.

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::lpm::RouteEntry;
use netfpga_datapath::ParsedHeaders;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_phy::LinkConfig;
use netfpga_projects::reference_router::exception;
use netfpga_projects::ReferenceRouter;

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn ip(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

/// Wire port 2's output into port 3's input and vice versa, and install
/// routes that bounce 10.7.0.0/16 between them: a hardware routing loop.
/// A packet entering with TTL = N must traverse exactly N-1 hops and then
/// surface on the CPU path as TTL_EXPIRED — the loop is contained, the
/// datapath never wedges, and every traversal decrements TTL with a valid
/// checksum.
#[test]
fn routing_loop_contained_by_ttl() {
    let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    {
        let mut t = r.tables.borrow_mut();
        t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
        t.lpm.insert(
            "10.7.0.0/16".parse().unwrap(),
            RouteEntry {
                next_hop: ip("10.7.255.1"),
                port: 2,
            },
        );
        // The "next hop" is reachable via... the other looped port, so the
        // packet comes straight back in.
        t.arp.insert(ip("10.7.255.1"), mac(0xe3));
    }
    let mut r = r;
    // Splice: port 2 out -> port 3 in, port 3 out -> port 2 in.
    let (to2, from2) = r.chassis.port_wires(2);
    let (to3, from3) = r.chassis.port_wires(3);
    r.chassis
        .add_link("loop_a", from2, to3, LinkConfig::default());
    r.chassis
        .add_link("loop_b", from3, to2, LinkConfig::default());

    let ttl0 = 9u8;
    let pkt = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("10.7.1.1"))
        .ttl(ttl0)
        .udp(1, 2, b"looping")
        .build();
    r.chassis.send(0, pkt);
    r.chassis.run_for(Time::from_ms(1));

    let dma = r.chassis.dma.clone().unwrap();
    let (dead, meta) = dma.recv().expect("loop must end at the CPU");
    assert_eq!(meta.flags, exception::TTL_EXPIRED);
    let h = ParsedHeaders::parse(&dead);
    let ip4 = h.ipv4.unwrap();
    assert_eq!(ip4.ttl, 1, "expired exactly at TTL 1");
    assert!(ip4.checksum_ok, "checksum valid after every loop hop");
    // Forward count: one per successful traversal = ttl0 - 1.
    assert_eq!(r.counters.borrow().forwarded, u64::from(ttl0) - 1);
    assert!(dma.recv().is_none(), "exactly one copy reaches the CPU");
}

/// The L2 counterpart: splicing two ports of the *switch* together builds
/// the classic loop, and a single broadcast — with no TTL at layer 2 —
/// circulates and re-floods indefinitely: a broadcast storm. The test
/// bounds it in time and verifies the storm really multiplies (which is
/// why loop-free configuration work like BlueSwitch exists).
#[test]
fn l2_broadcast_storm_in_a_loop() {
    use netfpga_projects::ReferenceSwitch;
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 256, Time::from_ms(100));
    let (_to2, from2) = sw.chassis.port_wires(2);
    let (to3, _from3) = sw.chassis.port_wires(3);
    let (to2b, _) = sw.chassis.port_wires(2);
    let (_, from3b) = sw.chassis.port_wires(3);
    sw.chassis
        .add_link("loop_a", from2, to3, LinkConfig::default());
    sw.chassis
        .add_link("loop_b", from3b, to2b, LinkConfig::default());

    let bcast = PacketBuilder::new()
        .eth(mac(1), EthernetAddress::BROADCAST)
        .raw(netfpga_packet::EtherType::Arp, &[0; 46])
        .build();
    sw.chassis.send(0, bcast);
    sw.chassis.run_for(Time::from_us(200));
    // Each pass through the loop re-floods out ports 0 and 1: far more
    // copies than the single injected frame.
    let copies = sw.chassis.recv(1).len();
    assert!(copies > 5, "broadcast storm multiplied to {copies} copies");
    // The simulation stays healthy: stop feeding the loop by resetting.
    sw.chassis.sim.reset();
}

/// A lossy splice on a looped pair: packets with TTL = 2 forward exactly
/// once, cross the lossy wire, and the survivors expire at the CPU. The
/// CPU count matches the wire's survival probability; nothing is
/// duplicated and nothing wedges.
#[test]
fn lossy_splice_conserves_packets() {
    let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    {
        let mut t = r.tables.borrow_mut();
        t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
        t.lpm.insert(
            "10.9.0.0/16".parse().unwrap(),
            RouteEntry {
                next_hop: ip("10.2.0.1"),
                port: 2,
            },
        );
        t.arp.insert(ip("10.2.0.1"), mac(0xe3));
    }
    let mut r = r;
    let (_to2, from2) = r.chassis.port_wires(2);
    let (to3, _from3) = r.chassis.port_wires(3);
    r.chassis.add_link(
        "lossy_splice",
        from2,
        to3,
        LinkConfig {
            loss_probability: 0.4,
            seed: 3,
            ..LinkConfig::default()
        },
    );
    let n = 200u64;
    for i in 0..n {
        let pkt = PacketBuilder::new()
            .eth(mac(0xa1), mac(0xe0))
            .ipv4(ip("10.0.0.2"), ip("10.9.1.7"))
            .ttl(2)
            .udp(i as u16, 6, b"x")
            .build();
        r.chassis.send(0, pkt);
    }
    r.chassis.run_for(Time::from_ms(2));
    let dma = r.chassis.dma.clone().unwrap();
    let mut expired = 0u64;
    while let Some((_, meta)) = dma.recv() {
        assert_eq!(meta.flags, exception::TTL_EXPIRED);
        expired += 1;
    }
    let rate = expired as f64 / n as f64;
    assert!((rate - 0.6).abs() < 0.1, "survival rate {rate}");
    assert_eq!(
        r.counters.borrow().forwarded,
        n,
        "each packet forwarded once"
    );
}
