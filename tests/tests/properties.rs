//! Cross-crate property tests: system-level invariants under randomized
//! traffic, checked with proptest.

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::lpm::RouteEntry;
use netfpga_datapath::ParsedHeaders;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::{AcceptanceTest, ReferenceRouter, ReferenceSwitch};
use proptest::prelude::*;

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The acceptance loopback is lossless and order/content-preserving
    /// for any frame mix within buffering limits.
    #[test]
    fn prop_loopback_lossless(
        lens in proptest::collection::vec(60usize..1514, 1..30),
        port in 0usize..2,
    ) {
        let mut a = AcceptanceTest::new(&BoardSpec::sume(), 2);
        let frames: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                PacketBuilder::new()
                    .eth(mac(i as u8), mac(0xff))
                    .raw(netfpga_packet::EtherType::Unknown(0x9999), &[i as u8; 46])
                    .pad_to(len)
                    .build()
            })
            .collect();
        for f in &frames {
            a.chassis.send(port, f.clone());
        }
        a.chassis.run_for(Time::from_ms(1));
        let got = a.chassis.recv(port);
        prop_assert_eq!(got, frames);
    }

    /// The switch never reflects a frame out of its own ingress port and
    /// never delivers the same frame twice to one port. Each injected
    /// frame carries a unique sequence number so its identity (and ingress
    /// port) is exact.
    #[test]
    fn prop_switch_no_reflection_no_dup(
        traffic in proptest::collection::vec((0u8..4, 1u8..8, 1u8..8), 1..25),
    ) {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 256, Time::from_ms(100));
        let mut ingress_of = Vec::new();
        for (seq, &(in_port, src, dst)) in traffic.iter().enumerate() {
            let f = PacketBuilder::new()
                .eth(mac(src), mac(dst))
                .raw(netfpga_packet::EtherType::Ipv4, &[seq as u8; 46])
                .build();
            sw.chassis.send(in_port as usize, f);
            ingress_of.push(in_port as usize);
            // Let each frame fully traverse so learning is sequential.
            sw.chassis.run_for(Time::from_us(5));
        }
        sw.chassis.run_for(Time::from_us(100));
        for port in 0..4usize {
            let got = sw.chassis.recv(port);
            let mut seen = std::collections::BTreeSet::new();
            for f in &got {
                let seq = usize::from(f[14]); // first payload byte
                prop_assert_ne!(
                    ingress_of[seq], port,
                    "frame {} reflected to its ingress port {}", seq, port
                );
                prop_assert!(seen.insert(seq), "frame {} duplicated on port {}", seq, port);
            }
        }
    }

    /// Every packet the router forwards in hardware has a valid checksum
    /// and TTL exactly one less than the input; no packet is both
    /// forwarded and sent to the CPU.
    #[test]
    fn prop_router_ttl_checksum_invariant(
        ttls in proptest::collection::vec(1u8..64, 1..20),
        lens in proptest::collection::vec(60usize..512, 1..20),
    ) {
        let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
        {
            let mut t = r.tables.borrow_mut();
            t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
            t.lpm.insert(
                "10.9.0.0/16".parse().unwrap(),
                RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port: 3 },
            );
            for h in 0..16u8 {
                t.arp.insert(Ipv4Address::new(10, 9, 0, h), mac(0x90 + h));
            }
        }
        let mut r = r;
        let n = ttls.len().min(lens.len());
        let mut expect_fwd = 0u64;
        for i in 0..n {
            let f = PacketBuilder::new()
                .eth(mac(0xa1), mac(0xe0))
                .ipv4(Ipv4Address::new(10, 0, 0, 2), Ipv4Address::new(10, 9, 0, (i % 16) as u8))
                .ttl(ttls[i])
                .udp(1, 2, &[])
                .pad_to(lens[i])
                .build();
            if ttls[i] > 1 {
                expect_fwd += 1;
            }
            r.chassis.send(0, f);
        }
        r.chassis.run_for(Time::from_ms(1));
        let out = r.chassis.recv(3);
        prop_assert_eq!(out.len() as u64, expect_fwd);
        for f in &out {
            let ip4 = ParsedHeaders::parse(f).ipv4.unwrap();
            prop_assert!(ip4.checksum_ok);
            prop_assert!(ip4.ttl >= 1);
        }
        let dma = r.chassis.dma.clone().unwrap();
        let mut cpu = 0u64;
        while dma.recv().is_some() {
            cpu += 1;
        }
        prop_assert_eq!(cpu + expect_fwd, n as u64, "each packet exactly one fate");
    }
}

/// Conservation under congestion: for any overload pattern, packets in =
/// packets out + drops (no loss without accounting, no duplication).
#[test]
fn conservation_under_congestion() {
    let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    {
        let mut t = r.tables.borrow_mut();
        t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
        t.lpm.insert(
            "10.9.0.0/16".parse().unwrap(),
            RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port: 3 },
        );
        t.arp.insert(Ipv4Address::new(10, 9, 0, 1), mac(0x91));
    }
    let mut r = r;
    // 3 ports full blast into one egress, enough to overflow the 512 KiB
    // output queue (3 x 1200 x 300 B ≈ 1 MiB of backlog demand).
    let n_per_port = 1200u64;
    for port in 0..3usize {
        for i in 0..n_per_port {
            let f = PacketBuilder::new()
                .eth(mac(0xa1 + port as u8), mac(0xe0))
                .ipv4(
                    Ipv4Address::new(10, 0, port as u8, 2),
                    Ipv4Address::new(10, 9, 0, 1),
                )
                .udp(i as u16, 2, &[])
                .pad_to(300)
                .build();
            r.chassis.send(port, f);
        }
    }
    r.chassis.run_for(Time::from_ms(3));
    let egressed = r.chassis.recv(3).len() as u64;
    let counters = r.counters.borrow();
    // Every ingress frame was routed (forwarded counter), then either
    // egressed or tail-dropped in the output queues.
    assert_eq!(counters.forwarded, 3 * n_per_port);
    assert!(egressed <= 3 * n_per_port);
    assert!(egressed > 0);
    // The router's MAC counters account for the rest as queue drops; the
    // key invariant is no duplication:
    assert!(egressed + 10 < 3 * n_per_port, "congestion must drop (sanity)");
}
