//! Cross-crate property tests: system-level invariants under randomized
//! traffic, checked with proptest.

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::lpm::RouteEntry;
use netfpga_datapath::ParsedHeaders;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::{AcceptanceTest, ReferenceRouter, ReferenceSwitch};
use proptest::prelude::*;

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The acceptance loopback is lossless and order/content-preserving
    /// for any frame mix within buffering limits.
    #[test]
    fn prop_loopback_lossless(
        lens in proptest::collection::vec(60usize..1514, 1..30),
        port in 0usize..2,
    ) {
        let mut a = AcceptanceTest::new(&BoardSpec::sume(), 2);
        let frames: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                PacketBuilder::new()
                    .eth(mac(i as u8), mac(0xff))
                    .raw(netfpga_packet::EtherType::Unknown(0x9999), &[i as u8; 46])
                    .pad_to(len)
                    .build()
            })
            .collect();
        for f in &frames {
            a.chassis.send(port, f.clone());
        }
        a.chassis.run_for(Time::from_ms(1));
        let got = a.chassis.recv(port);
        prop_assert_eq!(got, frames);
    }

    /// The switch never reflects a frame out of its own ingress port and
    /// never delivers the same frame twice to one port. Each injected
    /// frame carries a unique sequence number so its identity (and ingress
    /// port) is exact.
    #[test]
    fn prop_switch_no_reflection_no_dup(
        traffic in proptest::collection::vec((0u8..4, 1u8..8, 1u8..8), 1..25),
    ) {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 256, Time::from_ms(100));
        let mut ingress_of = Vec::new();
        for (seq, &(in_port, src, dst)) in traffic.iter().enumerate() {
            let f = PacketBuilder::new()
                .eth(mac(src), mac(dst))
                .raw(netfpga_packet::EtherType::Ipv4, &[seq as u8; 46])
                .build();
            sw.chassis.send(in_port as usize, f);
            ingress_of.push(in_port as usize);
            // Let each frame fully traverse so learning is sequential.
            sw.chassis.run_for(Time::from_us(5));
        }
        sw.chassis.run_for(Time::from_us(100));
        for port in 0..4usize {
            let got = sw.chassis.recv(port);
            let mut seen = std::collections::BTreeSet::new();
            for f in &got {
                let seq = usize::from(f[14]); // first payload byte
                prop_assert_ne!(
                    ingress_of[seq], port,
                    "frame {} reflected to its ingress port {}", seq, port
                );
                prop_assert!(seen.insert(seq), "frame {} duplicated on port {}", seq, port);
            }
        }
    }

    /// Every packet the router forwards in hardware has a valid checksum
    /// and TTL exactly one less than the input; no packet is both
    /// forwarded and sent to the CPU.
    #[test]
    fn prop_router_ttl_checksum_invariant(
        ttls in proptest::collection::vec(1u8..64, 1..20),
        lens in proptest::collection::vec(60usize..512, 1..20),
    ) {
        let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
        {
            let mut t = r.tables.borrow_mut();
            t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
            t.lpm.insert(
                "10.9.0.0/16".parse().unwrap(),
                RouteEntry { next_hop: Ipv4Address::UNSPECIFIED, port: 3 },
            );
            for h in 0..16u8 {
                t.arp.insert(Ipv4Address::new(10, 9, 0, h), mac(0x90 + h));
            }
        }
        let mut r = r;
        let n = ttls.len().min(lens.len());
        let mut expect_fwd = 0u64;
        for i in 0..n {
            let f = PacketBuilder::new()
                .eth(mac(0xa1), mac(0xe0))
                .ipv4(Ipv4Address::new(10, 0, 0, 2), Ipv4Address::new(10, 9, 0, (i % 16) as u8))
                .ttl(ttls[i])
                .udp(1, 2, &[])
                .pad_to(lens[i])
                .build();
            if ttls[i] > 1 {
                expect_fwd += 1;
            }
            r.chassis.send(0, f);
        }
        r.chassis.run_for(Time::from_ms(1));
        let out = r.chassis.recv(3);
        prop_assert_eq!(out.len() as u64, expect_fwd);
        for f in &out {
            let ip4 = ParsedHeaders::parse(f).ipv4.unwrap();
            prop_assert!(ip4.checksum_ok);
            prop_assert!(ip4.ttl >= 1);
        }
        let dma = r.chassis.dma.clone().unwrap();
        let mut cpu = 0u64;
        while dma.recv().is_some() {
            cpu += 1;
        }
        prop_assert_eq!(cpu + expect_fwd, n as u64, "each packet exactly one fate");
    }
}

/// Support for the kernel-equivalence property below: tiny modules and a
/// frequency palette that mixes phase-aligned clocks (calendar-friendly),
/// odd periods, and a near-coprime slow clock that blows the hyperperiod
/// cap (forcing the heap fallback).
mod kernel {
    use netfpga_core::sim::{Module, TickContext};
    use netfpga_core::time::Frequency;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Pick a clock frequency from the palette.
    pub fn freq(i: usize) -> Frequency {
        match i % 6 {
            0 => Frequency::mhz(500),        // 2 ns
            1 => Frequency::mhz(250),        // 4 ns
            2 => Frequency::mhz(200),        // 5 ns
            3 => Frequency::hz(142_857_143), // ~7 ns
            4 => Frequency::hz(90_909_091),  // ~11 ns
            _ => Frequency::hz(999_983),     // ~1.000017 us: wrecks the lcm
        }
    }

    /// Records every edge of its clock domain: (domain id, instant).
    /// Deliberately never quiescent, so traces taken with a probe pin the
    /// exact edge schedule including coincident-edge ordering.
    pub struct EdgeProbe {
        pub id: u8,
        pub trace: Rc<RefCell<Vec<(u8, u64)>>>,
    }

    impl Module for EdgeProbe {
        fn name(&self) -> &str {
            "probe"
        }
        fn tick(&mut self, ctx: &TickContext) {
            self.trace.borrow_mut().push((self.id, ctx.now.as_ps()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The fast-path kernel is an optimization, not a semantics change:
    /// for random clock sets, random source→stage→sink topologies (with
    /// cross-domain streams and random burst flags) and a random schedule
    /// of `run_for`/`run_cycles` calls with mid-run injection, the edge
    /// calendar and the heap fallback produce the same edge trace, the
    /// same captured packets (bytes, metadata and arrival instants) and
    /// the same final clock state as the naive linear scan — and
    /// quiescence fast-forwarding changes nothing observable either.
    #[test]
    fn prop_kernel_equivalence(
        clock_sel in proptest::collection::vec(0usize..6, 1..4),
        pipes in proptest::collection::vec((0usize..8, 0usize..8, 0u64..6, 0u8..2), 1..4),
        phase1 in proptest::collection::vec((0usize..8, 46usize..220), 0..8),
        phase2 in proptest::collection::vec((0usize..8, 46usize..220), 0..8),
        segments in proptest::collection::vec((0u8..2, 1u64..300), 1..5),
    ) {
        use netfpga_core::packetio::{CapturedPacket, PacketSink, PacketSource};
        use netfpga_core::sim::{SchedulerMode, Simulator};
        use netfpga_core::pktbuf::PktBuf;
        use netfpga_core::stream::{Meta, Stream};
        use netfpga_datapath::stage::StageAction;
        use netfpga_datapath::PacketStage;
        use std::cell::RefCell;
        use std::rc::Rc;

        let run = |mode: SchedulerMode, idle_skip: bool, probe: bool| {
            let mut sim = Simulator::with_scheduler(mode);
            sim.set_idle_skip(idle_skip);
            let clks: Vec<_> = clock_sel
                .iter()
                .enumerate()
                .map(|(i, &f)| sim.add_clock(&format!("clk{i}"), kernel::freq(f)))
                .collect();
            let trace = Rc::new(RefCell::new(Vec::new()));
            if probe {
                for (i, &c) in clks.iter().enumerate() {
                    sim.add_module(c, kernel::EdgeProbe { id: i as u8, trace: trace.clone() });
                }
            }
            let mut injects = Vec::new();
            let mut caps = Vec::new();
            for &(ca, cb, lat, burst) in &pipes {
                let (in_tx, in_rx) = Stream::new(8, 32);
                let (out_tx, out_rx) = Stream::new(8, 32);
                let (src, q) = PacketSource::new("src", in_tx);
                let stage = PacketStage::new(
                    "stage",
                    in_rx,
                    out_tx,
                    lat,
                    |_p: &mut PktBuf, _m: &mut Meta, _t: Time| StageAction::Forward,
                )
                .with_burst(burst == 1);
                let (sink, cap) = PacketSink::new("sink", out_rx);
                sim.add_module(clks[ca % clks.len()], src);
                sim.add_module(clks[cb % clks.len()], stage);
                sim.add_module(clks[cb % clks.len()], sink);
                injects.push(q);
                caps.push(cap);
            }
            let inject = |batch: &[(usize, usize)]| {
                for (i, &(p, len)) in batch.iter().enumerate() {
                    injects[p % injects.len()]
                        .push(vec![(i as u8).wrapping_mul(31); len], (p % 4) as u8);
                }
            };
            inject(&phase1);
            let mid = segments.len() / 2;
            for (k, &(kind, amt)) in segments.iter().enumerate() {
                if k == mid {
                    inject(&phase2); // wake an idle (possibly fast-forwarded) sim
                }
                if kind == 0 {
                    sim.run_for(Time::from_ps(amt * 3_500));
                } else {
                    sim.run_cycles(clks[(amt as usize) % clks.len()], amt);
                }
            }
            sim.run_for(Time::from_us(3)); // settle: drain every pipeline
            let caps: Vec<Vec<CapturedPacket>> = caps.iter().map(|c| c.drain()).collect();
            let cycles: Vec<u64> = clks.iter().map(|&c| sim.cycles(c)).collect();
            let trace = trace.borrow().clone();
            (trace, caps, sim.now(), cycles)
        };

        // Scheduler equivalence, edge-by-edge: probes force every edge to
        // tick, so the traces pin the full schedule.
        let scan = run(SchedulerMode::Scan, false, true);
        prop_assert_eq!(&run(SchedulerMode::Calendar, false, true), &scan);
        prop_assert_eq!(&run(SchedulerMode::Heap, false, true), &scan);

        // Quiescence fast-forward equivalence: no probes, so idle
        // stretches really are skipped, and everything observable —
        // packets, arrival times, final now, per-domain cycle counts —
        // must still match the naive scan.
        let naive = run(SchedulerMode::Scan, false, false);
        prop_assert_eq!(&run(SchedulerMode::Auto, true, false), &naive);
        prop_assert_eq!(&run(SchedulerMode::Heap, true, false), &naive);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Copy-on-write isolation: flood and mirror copies are refcount bumps
    /// of one backing buffer, so corrupting *one* copy in flight (a BER
    /// flip through `WireFrame::corrupt_data`) must never leak into its
    /// siblings — they keep the pristine bytes and the fresh FCS.
    #[test]
    fn prop_flood_cow_isolation(
        payload in proptest::collection::vec(any::<u8>(), 60..512),
        fanout in 2usize..6,
        victim_sel in 0usize..6,
        seed in 1u64..1_000,
    ) {
        use netfpga_core::pktbuf::PktBuf;
        use netfpga_core::sim::Simulator;
        use netfpga_core::time::Frequency;
        use netfpga_phy::link::{Link, LinkConfig};
        use netfpga_phy::mac::{Wire, WireFrame};

        let victim = victim_sel % fanout;
        let buf = PktBuf::from_vec(payload.clone());
        let fcs = netfpga_packet::fcs::crc32(&buf);

        // "Flood": one buffer, `fanout` wires, each frame a refcount bump.
        let wires: Vec<Wire> = (0..fanout).map(|_| Wire::new()).collect();
        for w in &wires {
            w.push(WireFrame::with_fcs(buf.clone(), Time::ZERO, fcs));
        }

        // Corrupt exactly the victim's copy via an always-corrupting link.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("c", Frequency::mhz(200));
        let out = Wire::new();
        let cfg = LinkConfig { corrupt_probability: 1.0, seed, ..LinkConfig::default() };
        sim.add_module(clk, Link::new("l", wires[victim].clone(), out.clone(), cfg));
        sim.run_until(Time::from_us(1));

        let corrupted = out.take_ready(Time::from_ms(1)).expect("forwarded");
        prop_assert_ne!(corrupted.data.bytes(), &payload[..], "victim must differ");
        prop_assert!(!corrupted.fcs_fresh, "corruption must stale the FCS");
        prop_assert!(
            !corrupted.data.same_backing(&buf),
            "corruption must have copied, not edited the shared backing"
        );
        // Every sibling — and the original buffer — is bit-identical
        // pristine, still sharing the one backing, FCS still fresh.
        prop_assert_eq!(buf.bytes(), &payload[..]);
        for (i, w) in wires.iter().enumerate() {
            if i == victim {
                continue;
            }
            let f = w.take_ready(Time::from_ms(1)).expect("untouched sibling");
            prop_assert_eq!(f.data.bytes(), &payload[..], "sibling {} mutated", i);
            prop_assert!(f.fcs_fresh, "sibling {} FCS went stale", i);
            prop_assert!(f.data.same_backing(&buf), "sibling {} was copied", i);
        }
    }

    /// Pool and scheduler invariance under flood + faults: a broadcast
    /// (flood) workload through the reference switch with a seeded BER
    /// fault plan delivers *bit-identical* frames, fault traces and
    /// counters whether the frame pool is on or off, under every scheduler
    /// mode — recycling buffers and bumping refcounts instead of copying
    /// is invisible to every observable.
    #[test]
    fn prop_flood_replay_identical_with_pool_on_and_off(
        frames in proptest::collection::vec((0usize..4, 46usize..220), 1..12),
        ber_exp in 4u32..7,
        seed in 0u64..500,
    ) {
        use netfpga_core::pktbuf;
        use netfpga_core::sim::SchedulerMode;
        use netfpga_faults::{FaultKind, FaultPlan};

        let run = |mode: SchedulerMode, pool: bool| {
            pktbuf::reset_pool();
            pktbuf::set_pool_enabled(pool);
            let plan = FaultPlan::new(seed).at(
                Time::ZERO,
                FaultKind::SetBer { port: 1, ber: 10f64.powi(-(ber_exp as i32)) },
            );
            let mut sw = ReferenceSwitch::with_faults(
                &BoardSpec::sume(), 4, 256, Time::from_ms(100), false, plan,
            );
            sw.chassis.sim.set_scheduler_mode(mode);
            // Unknown unicast destinations -> every frame floods to the
            // other three ports as refcount bumps of one buffer.
            for (i, &(port, len)) in frames.iter().enumerate() {
                let f = PacketBuilder::new()
                    .eth(mac(port as u8 + 1), mac(0xee))
                    .raw(netfpga_packet::EtherType::Ipv4, &vec![i as u8; len])
                    .build();
                sw.chassis.send(port, f);
                sw.chassis.run_for(Time::from_us(2));
            }
            sw.chassis.run_for(Time::from_us(200));
            let recv: Vec<Vec<Vec<u8>>> = (0..4).map(|p| sw.chassis.recv(p)).collect();
            let faults = sw.chassis.faults.clone().expect("armed plan");
            let counters = (
                faults.counters().ber_flips.get(),
                faults.counters().frames_corrupted.get(),
            );
            let trace = faults.trace();
            pktbuf::set_pool_enabled(true);
            (recv, counters, trace)
        };

        let base = run(SchedulerMode::Scan, true);
        for mode in [SchedulerMode::Scan, SchedulerMode::Calendar, SchedulerMode::Heap] {
            for pool in [true, false] {
                prop_assert_eq!(
                    &run(mode, pool), &base,
                    "flood replay diverged under {:?} pool={}", mode, pool
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Quiescence never skips a scheduled fault: a `FaultPlan` event deep
    /// inside an idle stretch is exactly where fast-forwarding is tempted
    /// to jump — the injector's `is_quiescent` must hold the kernel back so
    /// the link-down window opens at its scheduled instant, not late. A
    /// frame offered inside the window is dropped (and counted) and a
    /// frame after it floods, identically with and without idle skipping.
    #[test]
    fn prop_fault_events_survive_idle_fast_forward(
        gap_us in 10u64..400,
        down_us in 10u64..60,
        seed in 0u64..1000,
    ) {
        use netfpga_faults::{FaultKind, FaultPlan};

        let gap = Time::from_us(gap_us);
        let down = Time::from_us(down_us);
        let run = |idle_skip: bool| {
            let plan = FaultPlan::new(seed)
                .at(gap, FaultKind::LinkDown { port: 0, duration: down });
            let mut sw = ReferenceSwitch::with_faults(
                &BoardSpec::sume(), 4, 256, Time::from_ms(100), false, plan,
            );
            sw.chassis.sim.set_idle_skip(idle_skip);
            // Idle across the scheduled event: nothing in flight, so a
            // kernel that trusts a stale quiescence promise would jump
            // straight past `gap`.
            sw.chassis.run_for(gap + Time::from_us(2));
            // Offer a frame inside the down window: must be dropped.
            let f = PacketBuilder::new()
                .eth(mac(1), mac(2))
                .raw(netfpga_packet::EtherType::Ipv4, &[7; 46])
                .build();
            sw.chassis.send(0, f.clone());
            sw.chassis.run_for(down + Time::from_us(100));
            // And one after the window: link is back, frame floods.
            sw.chassis.send(0, f);
            sw.chassis.run_for(Time::from_us(50));
            let faults = sw.chassis.faults.clone().expect("armed plan");
            let recv: Vec<usize> = (0..4).map(|p| sw.chassis.recv(p).len()).collect();
            (
                recv,
                faults.counters().link_down_drops.get(),
                faults.counters().events_applied.get(),
                faults.trace(),
            )
        };

        let skipped = run(true);
        prop_assert_eq!(skipped.1, 1, "frame in the window must be dropped");
        prop_assert_eq!(&skipped.0, &vec![0, 1, 1, 1], "frame after it must flood");
        prop_assert_eq!(&skipped, &run(false), "idle skipping must change nothing");
    }

    /// The autonomic recovery plane is schedule-invariant: with the PCS
    /// retrain state machine healing a link flap (no restore event), the
    /// down edge and the recovery edge land on the *same simulated
    /// instant* under every scheduler mode with idle skipping on or off —
    /// the retrain FSM and the injector compose with idle fast-forward.
    #[test]
    fn prop_recovery_completes_at_the_same_cycle_under_every_scheduler(
        gap_us in 5u64..100,
        down_us in 5u64..40,
        retrain in 50u64..1500,
        holddown in 20u64..500,
    ) {
        use netfpga_core::sim::SchedulerMode;
        use netfpga_faults::{FaultKind, FaultPlan, RecoveryPolicy};

        let run = |mode: SchedulerMode, idle_skip: bool| {
            let plan = FaultPlan::new(1)
                .at(
                    Time::from_us(gap_us),
                    FaultKind::LinkDown { port: 1, duration: Time::from_us(down_us) },
                )
                .with_recovery(RecoveryPolicy {
                    retrain_cycles: retrain,
                    holddown_cycles: holddown,
                    rejoin_cycles: 800,
                    scrub_words_per_cycle: 0,
                    ..RecoveryPolicy::default()
                });
            let mut sw = ReferenceSwitch::with_faults(
                &BoardSpec::sume(), 4, 256, Time::from_ms(100), false, plan,
            );
            sw.chassis.sim.set_scheduler_mode(mode);
            sw.chassis.sim.set_idle_skip(idle_skip);
            let pcs = sw.chassis.pcs_handle(1).expect("recovery plane");
            let deadline = Time::from_us(gap_us + down_us) + Time::from_ms(2);
            let p = pcs.clone();
            assert!(sw.chassis.run_while(deadline, move || p.is_up()), "must go down");
            let down_at = sw.chassis.sim.now();
            let p = pcs.clone();
            assert!(sw.chassis.run_while(deadline, move || !p.is_up()), "must recover");
            let up_at = sw.chassis.sim.now();
            let events: Vec<_> = sw
                .chassis
                .events
                .pending()
                .iter()
                .map(|e| (e.kind, e.port, e.data, e.at))
                .collect();
            (down_at, up_at, events, pcs.counters().retrains.get())
        };

        let base = run(SchedulerMode::Scan, false);
        for mode in [SchedulerMode::Scan, SchedulerMode::Calendar, SchedulerMode::Heap] {
            for idle_skip in [false, true] {
                prop_assert_eq!(
                    &run(mode, idle_skip), &base,
                    "recovery diverged under {:?} idle_skip={}", mode, idle_skip
                );
            }
        }
    }

    /// The cached-bound protocol is invisible: whether the workload runs
    /// a seeded fault plan (BER set partway through, exercising the
    /// injector's scheduled-event bound) or a flowmon tap in the datapath
    /// (exercising the tap's push-wake and the exporter's sample bound),
    /// the fused dispatcher serving cached activity classifications under
    /// idle skipping delivers bit-identical frames, fault traces and final
    /// clocks to the unfused `Scan` reference that re-queries every module
    /// on every edge.
    #[test]
    fn prop_cached_bounds_invisible_under_faults_and_tap(
        frames in proptest::collection::vec((0usize..4, 46usize..220), 1..10),
        gap_us in 5u64..80,
        ber_exp in 4u32..7,
        seed in 0u64..500,
        tap in any::<bool>(),
    ) {
        use netfpga_core::sim::SchedulerMode;
        use netfpga_faults::{FaultKind, FaultPlan};
        use netfpga_projects::flowmon::FlowmonConfig;

        let run = |mode: SchedulerMode, idle_skip: bool| {
            let mut sw = if tap {
                ReferenceSwitch::with_flowmon(
                    &BoardSpec::sume(), 4, 256, Time::from_ms(100), false,
                    FlowmonConfig::default(),
                )
            } else {
                let plan = FaultPlan::new(seed).at(
                    Time::from_us(gap_us),
                    FaultKind::SetBer { port: 1, ber: 10f64.powi(-(ber_exp as i32)) },
                );
                ReferenceSwitch::with_faults(
                    &BoardSpec::sume(), 4, 256, Time::from_ms(100), false, plan,
                )
            };
            sw.chassis.sim.set_scheduler_mode(mode);
            sw.chassis.sim.set_idle_skip(idle_skip);
            for (i, &(port, len)) in frames.iter().enumerate() {
                let f = PacketBuilder::new()
                    .eth(mac(port as u8 + 1), mac(0xee))
                    .raw(netfpga_packet::EtherType::Ipv4, &vec![i as u8; len])
                    .build();
                sw.chassis.send(port, f);
                // Idle gaps between frames are where a stale cached bound
                // would skip a wake or a scheduled fault.
                sw.chassis.run_for(Time::from_us(3));
            }
            sw.chassis.run_for(Time::from_us(300));
            let recv: Vec<Vec<Vec<u8>>> = (0..4).map(|p| sw.chassis.recv(p)).collect();
            let trace = sw.chassis.faults.as_ref().map(|f| f.trace());
            (recv, trace, sw.chassis.sim.now())
        };

        let reference = run(SchedulerMode::Scan, false);
        prop_assert_eq!(
            &run(SchedulerMode::Auto, true), &reference,
            "cached bounds diverged from the scan reference (tap={})", tap
        );
    }

    /// The background scrubber visits every word of every registered
    /// region within one sweep period: for any memory size, scrub rate
    /// and upset pattern (one flip per word, so no doubles), every flip
    /// is corrected within `ceil(words / rate)` cycles of landing.
    #[test]
    fn prop_scrubber_visits_every_word_within_one_period(
        words_sel in 64usize..2048,
        wpc in 1u32..8,
        flip_words in proptest::collection::btree_set(0usize..64, 1..24),
        start_us in 1u64..40,
    ) {
        use netfpga_core::regs::AddressMap;
        use netfpga_faults::{EccMode, FaultKind, FaultPlan, RecoveryPolicy};
        use netfpga_mem::Bram;
        use netfpga_projects::Chassis;
        use std::cell::RefCell;
        use std::rc::Rc;

        let policy = RecoveryPolicy {
            scrub_words_per_cycle: wpc,
            ..RecoveryPolicy::default()
        };
        let (mut chassis, _io) = Chassis::with_faults(
            &BoardSpec::sume(), 1, AddressMap::new(), false,
            FaultPlan::new(3).with_recovery(policy),
        );
        let faults = chassis.faults.clone().expect("armed");
        faults.register_memory(
            "m",
            EccMode::Secded,
            Rc::new(RefCell::new(Bram::<u64>::new(words_sel))),
        );

        chassis.run_for(Time::from_us(start_us));
        // One flip per distinct word (scaled injectively into the region).
        for (k, w) in flip_words.iter().enumerate() {
            faults.inject(FaultKind::MemFlip {
                memory: "m".into(),
                index: w * words_sel / 64,
                bit: k % 60,
            });
        }
        let period_cycles = (words_sel as u64).div_ceil(u64::from(wpc));
        let period = Time::from_ps(
            chassis.sim.period(chassis.clk).as_ps() * period_cycles,
        );
        chassis.run_for(period + Time::from_us(1));

        prop_assert_eq!(faults.pending_upsets(), 0, "latent flips after a full sweep");
        let stat = |path: &str| chassis.telemetry.get(path).expect(path);
        prop_assert_eq!(stat("faults.mem.corrected"), flip_words.len() as u64);
        prop_assert_eq!(stat("faults.mem.double_upsets"), 0);
        let latencies = faults.scrub_latencies();
        prop_assert_eq!(latencies.len(), flip_words.len());
        for lat in latencies {
            prop_assert!(lat <= period, "correction latency {} beyond one period {}", lat, period);
        }
    }
}

/// Conservation under congestion: for any overload pattern, packets in =
/// packets out + drops (no loss without accounting, no duplication).
#[test]
fn conservation_under_congestion() {
    let r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    {
        let mut t = r.tables.borrow_mut();
        t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
        t.lpm.insert(
            "10.9.0.0/16".parse().unwrap(),
            RouteEntry {
                next_hop: Ipv4Address::UNSPECIFIED,
                port: 3,
            },
        );
        t.arp.insert(Ipv4Address::new(10, 9, 0, 1), mac(0x91));
    }
    let mut r = r;
    // 3 ports full blast into one egress, enough to overflow the 512 KiB
    // output queue (3 x 1200 x 300 B ≈ 1 MiB of backlog demand).
    let n_per_port = 1200u64;
    for port in 0..3usize {
        for i in 0..n_per_port {
            let f = PacketBuilder::new()
                .eth(mac(0xa1 + port as u8), mac(0xe0))
                .ipv4(
                    Ipv4Address::new(10, 0, port as u8, 2),
                    Ipv4Address::new(10, 9, 0, 1),
                )
                .udp(i as u16, 2, &[])
                .pad_to(300)
                .build();
            r.chassis.send(port, f);
        }
    }
    r.chassis.run_for(Time::from_ms(3));
    let egressed = r.chassis.recv(3).len() as u64;
    let counters = r.counters.borrow();
    // Every ingress frame was routed (forwarded counter), then either
    // egressed or tail-dropped in the output queues.
    assert_eq!(counters.forwarded, 3 * n_per_port);
    assert!(egressed <= 3 * n_per_port);
    assert!(egressed > 0);
    // The router's MAC counters account for the rest as queue drops; the
    // key invariant is no duplication:
    assert!(
        egressed + 10 < 3 * n_per_port,
        "congestion must drop (sanity)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The auto-mounted stat block honours the register-space contract for
    /// ANY registry shape: reads outside its span (and in the padding past
    /// the name blob) return `UNMAPPED_READ`; writes to read-only offsets
    /// (header, name table, gauge values) change nothing; a write to a
    /// counter slot clears that counter and only that counter.
    #[test]
    fn prop_stat_block_span_and_readonly(
        name_ids in proptest::collection::btree_set(0u32..10_000, 1..12),
        values in proptest::collection::vec(0u64..5_000, 12),
        gauge_mask in proptest::collection::vec(any::<bool>(), 12),
        probe_words in proptest::collection::vec(0u32..0x200, 1..16),
        write_word in 0u32..0x200,
    ) {
        use netfpga_core::regs::{shared, AddressMap, UNMAPPED_READ};
        use netfpga_core::telemetry::{StatBlock, StatRegistry};

        let reg = StatRegistry::new();
        // Injective id → dotted-path mapping (unique ids, unique paths).
        let names: Vec<String> =
            name_ids.iter().map(|v| format!("grp{}.stat{}", v / 100, v % 100)).collect();
        for (i, name) in names.iter().enumerate() {
            let value = values[i % values.len()];
            if gauge_mask[i % gauge_mask.len()] {
                reg.gauge(name, move || value);
            } else {
                reg.counter(name).add(value);
            }
        }
        let block = StatBlock::from_registry(&reg, "");
        let size = block.size_bytes();
        let count = block.count() as u32;
        let values_off = 0x10u32;
        let names_off = values_off + 4 * count;

        const BASE: u32 = 0x4000;
        let map = AddressMap::new();
        map.mount("telemetry", BASE, (size + 0xff) & !0xff, shared(block));
        let read = |map: &AddressMap, off: u32| map.read(BASE + off);

        // Everything at or past the blob (padding included) is unmapped.
        for &w in &probe_words {
            let off = size + w * 4;
            prop_assert_eq!(read(&map, off), UNMAPPED_READ, "offset {:#x}", off);
        }

        let before = reg.snapshot();
        // Writes to the header and the name table are ignored.
        for off in [0x0, 0x4, 0x8, 0xC, names_off, size - 4] {
            map.write(BASE + off, 0xffff_ffff);
        }
        // Writes to gauge slots are ignored too; sorted registry order
        // matches block order, so slot i belongs to snapshot entry i.
        for (i, (path, _)) in before.iter().enumerate() {
            if !reg.clearable(path) {
                map.write(BASE + values_off + 4 * i as u32, 0);
            }
        }
        prop_assert_eq!(reg.snapshot(), before.clone(), "read-only offsets mutated state");

        // A write to one counter slot clears exactly that counter.
        let target = (write_word % count) as usize;
        map.write(BASE + values_off + 4 * target as u32, 0);
        for (i, (path, value)) in reg.snapshot().iter().enumerate() {
            let expect = if i == target && reg.clearable(path) { 0 } else { before[i].1 };
            prop_assert_eq!(*value, expect, "stat {:?} after clearing slot {}", path, target);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The reliable host-I/O plane is exactly-once and schedule-invariant:
    /// under a seeded fault plan that stalls and drops the DMA engine
    /// (no wedge — retry alone must heal), every frame the channel accepts
    /// exits the wire exactly once (no loss, no duplicates, acks equal
    /// accepts), and the delivered byte stream, retry count and dedup
    /// counters are bit-identical across scan/calendar/heap scheduling
    /// with idle fast-forward on or off.
    #[test]
    fn prop_reliable_channel_exactly_once_and_schedule_invariant(
        stall_us in 0u64..50,
        drop_us in 0u64..40,
        nframes in 4usize..20,
        seed in 0u64..1000,
    ) {
        use netfpga_core::sim::SchedulerMode;
        use netfpga_core::stream::{Meta, PortMask};
        use netfpga_faults::{FaultKind, FaultPlan};
        use netfpga_host::{ReliableChannel, ReliableConfig};
        use netfpga_projects::reference_nic::ReferenceNic;
        use std::collections::BTreeSet;

        let run = |mode: SchedulerMode, idle_skip: bool| {
            let mut plan = FaultPlan::new(seed);
            if stall_us > 0 {
                plan = plan.at(
                    Time::from_us(20),
                    FaultKind::DmaStall { duration: Time::from_us(stall_us) },
                );
            }
            if drop_us > 0 {
                plan = plan.at(
                    Time::from_us(45),
                    FaultKind::DmaDrop { duration: Time::from_us(drop_us) },
                );
            }
            let mut nic = ReferenceNic::with_faults(&BoardSpec::sume(), 4, false, plan);
            nic.chassis.sim.set_scheduler_mode(mode);
            nic.chassis.sim.set_idle_skip(idle_skip);
            let dma = nic.chassis.dma.clone().expect("NIC has DMA");
            // A generous attempt cap: loss is never a legal outcome here.
            let config = ReliableConfig { max_attempts: 32, ..ReliableConfig::default() };
            let (driver, channel) =
                ReliableChannel::new("reliable", dma.clone(), config, seed ^ 0x5eed);
            let clk = nic.chassis.clk;
            nic.chassis.sim.add_module(clk, driver);

            let meta = Meta { dst_ports: PortMask::single(1), ..Default::default() };
            for k in 0..nframes {
                let f = PacketBuilder::new()
                    .eth(mac(0xee), mac(0xa0))
                    .raw(netfpga_packet::EtherType::Ipv4, &[k as u8; 46])
                    .build();
                assert!(channel.send(f, meta), "pending queue is deep enough");
                nic.chassis.run_for(Time::from_us(3));
            }
            let deadline = nic.chassis.sim.now() + Time::from_ms(5);
            while !channel.idle() && nic.chassis.sim.now() < deadline {
                nic.chassis.run_for(Time::from_us(10));
            }
            nic.chassis.run_for(Time::from_us(50));
            (
                nic.chassis.recv(1),
                channel.accepted(),
                channel.abandoned(),
                channel.retries(),
                dma.acked(),
                dma.dup_discards(),
            )
        };

        let base = run(SchedulerMode::Scan, false);
        let (delivered, accepted, abandoned, _, acked, _) = &base;
        prop_assert_eq!(*accepted, nframes as u64, "every offer fits the pending queue");
        prop_assert_eq!(*abandoned, 0, "retry must outlast every stall/drop window");
        let mut seen = BTreeSet::new();
        for f in delivered {
            prop_assert!(seen.insert(f.clone()), "duplicate frame on the wire");
        }
        prop_assert_eq!(seen.len() as u64, *accepted, "every accepted frame delivered once");
        prop_assert_eq!(*acked, *accepted, "every sequence acked exactly once");

        for mode in [SchedulerMode::Scan, SchedulerMode::Calendar, SchedulerMode::Heap] {
            for idle_skip in [false, true] {
                prop_assert_eq!(
                    &run(mode, idle_skip), &base,
                    "reliable delivery diverged under {:?} idle_skip={}", mode, idle_skip
                );
            }
        }
    }
}
