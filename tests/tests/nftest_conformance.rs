//! Project conformance suites written as nftest plans — the "unified
//! tests" of the paper's §3, one suite per reference project, exercising
//! packets and registers through the same declarative interface the real
//! platform's Python harness provides.

use netfpga_core::board::BoardSpec;
use netfpga_core::stream::{Meta, PortMask};
use netfpga_core::time::Time;
use netfpga_nftest::{run, TestPlan};
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::reference_nic::{ReferenceNic, STATS_BASE};
use netfpga_projects::reference_router::{ReferenceRouter, ROUTER_BASE};
use netfpga_projects::reference_switch::{ReferenceSwitch, LOOKUP_BASE};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn ip(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

fn eth_frame(src: u8, dst: u8, fill: u8) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .raw(netfpga_packet::EtherType::Ipv4, &[fill; 46])
        .build()
}

#[test]
fn nic_conformance() {
    let mut nic = ReferenceNic::new(&BoardSpec::sume(), 4);
    let up0 = eth_frame(1, 2, 0xaa);
    let up3 = eth_frame(3, 4, 0xbb);
    let down = eth_frame(5, 6, 0xcc);
    let plan = TestPlan::new("nic_conformance")
        // RX: two ports to host, order preserved per DMA stream.
        .send_phy(0, up0.clone())
        .expect_dma(up0)
        .barrier(Time::from_us(50))
        .send_phy(3, up3.clone())
        .expect_dma(up3)
        .barrier(Time::from_us(50))
        // TX: host to each port.
        .send_dma(
            down.clone(),
            Meta {
                dst_ports: PortMask::single(2),
                ..Default::default()
            },
        )
        .expect_phy(2, down)
        .barrier(Time::from_us(50))
        // Registers: two RX packets counted.
        .reg_expect(STATS_BASE, 2)
        // Write-to-clear.
        .reg_write(STATS_BASE, 0)
        .reg_expect(STATS_BASE, 0);
    run(&plan, &mut nic.chassis).assert_passed();
}

#[test]
fn switch_conformance() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    let a_to_b = eth_frame(1, 2, 0x11);
    let b_to_a = eth_frame(2, 1, 0x22);
    let plan = TestPlan::new("switch_conformance")
        // Unknown dst: flood to 1,2,3 (A on port 0).
        .send_phy(0, a_to_b.clone())
        .expect_phy(1, a_to_b.clone())
        .expect_phy(2, a_to_b.clone())
        .expect_phy(3, a_to_b.clone())
        .barrier(Time::from_us(50))
        // B (port 2) answers: unicast straight to port 0.
        .send_phy(2, b_to_a.clone())
        .expect_phy(0, b_to_a)
        .barrier(Time::from_us(50))
        // A to B again: now unicast to port 2 only.
        .send_phy(0, a_to_b.clone())
        .expect_phy(2, a_to_b)
        .barrier(Time::from_us(50))
        // Lookup registers: 2 hits (B->A, A->B#2), 1 flood, 3 learns
        // (learn events: A, B, A-refresh).
        .reg_expect(LOOKUP_BASE, 2)
        .reg_expect(LOOKUP_BASE + 4, 1);
    run(&plan, &mut sw.chassis).assert_passed();
}

#[test]
fn router_conformance_via_registers_only() {
    // Configure the router entirely through its register protocol (as the
    // real CLI does), then verify hardware forwarding with rewrite.
    let mut r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    let b = ROUTER_BASE;
    let m_e1 = mac(0xe1).to_u64();
    let m_b2 = mac(0xb2).to_u64();
    let ingress = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("10.0.1.2"))
        .ttl(64)
        .udp(7, 9, b"route me")
        .build();
    // Expected egress: MACs rewritten, TTL 63, checksum updated.
    let expected = {
        let mut f = ingress.clone();
        {
            let mut eth = netfpga_packet::EthernetFrame::new_unchecked(&mut f[..]);
            eth.set_src_addr(mac(0xe1));
            eth.set_dst_addr(mac(0xb2));
            let off = eth.header_len();
            let mut ipp = netfpga_packet::ipv4::Ipv4Packet::new_unchecked(&mut f[off..]);
            ipp.decrement_ttl();
        }
        f
    };
    let plan = TestPlan::new("router_conformance")
        // ADD_ROUTE 10.0.1.0/24 -> direct, port 1.
        .reg_write(b + 4, u32::from_be_bytes([10, 0, 1, 0]))
        .reg_write(b + 8, 24)
        .reg_write(b + 12, 0)
        .reg_write(b + 16, 1)
        .reg_write(b, 1)
        // ADD_ARP 10.0.1.2 -> b2.
        .reg_write(b + 4, u32::from_be_bytes([10, 0, 1, 2]))
        .reg_write(b + 20, (m_b2 >> 32) as u32)
        .reg_write(b + 24, m_b2 as u32)
        .reg_write(b, 3)
        // SET_PORT_MAC 1 -> e1.
        .reg_write(b + 16, 1)
        .reg_write(b + 20, (m_e1 >> 32) as u32)
        .reg_write(b + 24, m_e1 as u32)
        .reg_write(b, 6)
        // Table sizes readable.
        .reg_expect(b + 19 * 4, 1)
        .reg_expect(b + 20 * 4, 1)
        // Hardware path with full rewrite verification.
        .send_phy(0, ingress)
        .expect_phy(1, expected)
        .barrier(Time::from_us(50))
        .reg_expect(b + 16 * 4, 1);
    run(&plan, &mut r.chassis).assert_passed();
}

#[test]
fn router_exception_to_dma() {
    let mut r = ReferenceRouter::new(&BoardSpec::sume(), 4);
    // No tables: an IPv4 frame has no route; expect it on the DMA path.
    let f = PacketBuilder::new()
        .eth(mac(0xa1), mac(0xe0))
        .ipv4(ip("10.0.0.2"), ip("10.0.1.2"))
        .udp(7, 9, b"exception")
        .build();
    let plan = TestPlan::new("router_exception")
        .send_phy(0, f.clone())
        .expect_dma(f)
        .barrier(Time::from_us(80));
    run(&plan, &mut r.chassis).assert_passed();
}

/// Flow-monitoring conformance: the switch with the tap spliced in still
/// forwards identically, and the plan asserts per-flow packet counts and
/// queue-depth quantiles purely through `expect_flow`/`expect_quantile` —
/// MMIO table walks and name-resolved gauges, no back-door state access.
#[test]
fn flowmon_conformance() {
    use netfpga_projects::flowmon::{FiveTuple, FlowmonConfig};
    let mut sw = ReferenceSwitch::with_flowmon(
        &BoardSpec::sume(),
        4,
        1024,
        Time::from_ms(100),
        false,
        FlowmonConfig::default(),
    );
    let udp = |sport: u16, npad: u8| {
        PacketBuilder::new()
            .eth(mac(1), mac(2))
            .ipv4(ip("192.168.0.1"), ip("192.168.0.2"))
            .udp(sport, 53, &vec![0x5a; usize::from(npad)])
            .build()
    };
    let tuple = |sport: u16| FiveTuple {
        src_ip: u32::from_be_bytes([192, 168, 0, 1]),
        dst_ip: u32::from_be_bytes([192, 168, 0, 2]),
        src_port: sport,
        dst_port: 53,
        proto: 17,
    };
    let mut plan = TestPlan::new("flowmon_conformance");
    // Elephant flow: 4 packets on sport 1000; mouse: 1 packet on 2000.
    for _ in 0..4 {
        plan = plan.send_phy(0, udp(1000, 64));
        for port in 1..4 {
            plan = plan.expect_phy(port, udp(1000, 64));
        }
    }
    plan = plan.send_phy(0, udp(2000, 32));
    for port in 1..4 {
        plan = plan.expect_phy(port, udp(2000, 32));
    }
    let plan = plan
        .barrier(Time::from_us(80))
        .expect_flow(tuple(1000), 4, 4)
        .expect_flow(tuple(2000), 1, 1)
        .expect_flow(tuple(3000), 0, 0)
        .expect_stat("flowmon.packets", 5, 5)
        .expect_stat("flowmon.flows", 2, 2)
        .expect_stat("flowmon.non_ip", 0, 0)
        // Queues drained by the end of the run: p50 and max are bounded
        // by the small burst we offered.
        .expect_quantile("port1.q0.depth", 50, 0, 8)
        .expect_quantile("port1.q0.depth", 100, 0, 16)
        .expect_quantile("pool.occupancy", 99, 1, u64::MAX);
    let report = run(&plan, &mut sw.chassis);
    report.assert_passed();
    assert_eq!(report.checks, 15 + 9);
}

/// Reliability conformance: host TX rides the reliable channel across a
/// DMA wedge. The plan wedges the engine, awaits the watchdog bite (and
/// the quiesce–drain–soft-reset it drives), then asserts every accepted
/// frame exited its port and the delivered-ack count reads exactly the
/// accepted count — retries filled the gaps, the sequence dedup filter
/// swallowed the extras.
#[test]
fn reliability_conformance() {
    use netfpga_faults::{FaultPlan, RecoveryPolicy};
    use netfpga_host::{ReliableChannel, ReliableConfig};
    let fault_plan = FaultPlan::new(21).with_recovery(RecoveryPolicy::default());
    let mut nic = ReferenceNic::with_faults(&BoardSpec::sume(), 4, false, fault_plan);
    let dma = nic.chassis.dma.clone().expect("NIC has DMA");
    let (driver, channel) = ReliableChannel::new("reliable", dma, ReliableConfig::default(), 7);
    let clk = nic.chassis.clk;
    nic.chassis.sim.add_module(clk, driver);

    let frames: Vec<Vec<u8>> = (0u8..6).map(|k| eth_frame(10 + k, 20, 0x60 + k)).collect();
    for f in &frames {
        assert!(channel.send(
            f.clone(),
            Meta {
                dst_ports: PortMask::single(1),
                ..Default::default()
            },
        ));
    }

    let mut plan = TestPlan::new("reliability_conformance")
        .wedge_dma()
        .run_for(Time::from_us(5)) // the driver posts into the wedged engine
        .await_watchdog(20_000);
    for f in &frames {
        plan = plan.expect_phy_unordered(1, f.clone());
    }
    let plan = plan.barrier(Time::from_ms(1)).expect_exactly_once(6);
    run(&plan, &mut nic.chassis).assert_passed();
    assert!(channel.idle());
}

/// One plan, two designs: the same flood test runs unchanged against two
/// different switch instances (different table sizes) — the "unified test"
/// property itself.
#[test]
fn same_plan_multiple_targets() {
    let f = eth_frame(1, 9, 0x44);
    let plan = TestPlan::new("portable_flood")
        .send_phy(0, f.clone())
        .expect_phy(1, f.clone())
        .expect_phy(2, f.clone())
        .expect_phy(3, f)
        .barrier(Time::from_us(50));
    let mut small = ReferenceSwitch::new(&BoardSpec::sume(), 4, 64, Time::from_ms(1));
    run(&plan, &mut small.chassis).assert_passed();
    let mut big = ReferenceSwitch::new(&BoardSpec::netfpga_10g(), 4, 4096, Time::from_ms(100));
    run(&plan, &mut big.chassis).assert_passed();
}
