//! Parallel-fabric integration tests: the sharded conservative-PDES run
//! must be bit-identical to the sequentialized (`nshards = 1`) reference
//! across shard counts, epoch lengths, schedulers and fault plans, and
//! the kernel work counters must stay MMIO-coherent per chassis while
//! summing across shards.

use netfpga_core::time::Time;
use netfpga_fabric::{run_fabric, FabricConfig};
use netfpga_faults::{FaultKind, FaultPlan};
use netfpga_host::dump_stats;
use netfpga_projects::fabric::{total_delivered, trace_signature, LeafSpine};
use netfpga_projects::ReferenceSwitch;
use proptest::prelude::*;

/// The fault-plan dimension of the equivalence property: every plan is
/// armed on one node of the fabric (the rest stay inert), so faulted
/// frames are lost *inside* one shard and the loss must replay
/// identically however the fabric is sharded.
fn plan_for_case(kind: usize, seed: u64, ls: &LeafSpine, node: usize) -> FaultPlan {
    match kind {
        // Heavy i.i.d. bit errors on leaf 0's first uplink: corrupted
        // frames fail the receiving MAC's FCS check mid-fabric.
        1 if node == 0 => FaultPlan::new(seed).at(
            Time::ZERO,
            FaultKind::SetBer {
                port: ls.host_ports as u8,
                ber: 1e-5,
            },
        ),
        // A link flap on spine 0's port towards leaf 0: two down
        // windows that swallow anything crossing during them.
        2 if node == ls.leaves => FaultPlan::new(seed)
            .at(
                Time::from_us(4),
                FaultKind::LinkDown {
                    port: 0,
                    duration: Time::from_us(6),
                },
            )
            .at(
                Time::from_us(18),
                FaultKind::LinkDown {
                    port: 0,
                    duration: Time::from_us(3),
                },
            ),
        _ => FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// THE fabric acceptance property: for random fabric shapes, shard
    /// counts, epoch lengths (any divisor of the lookahead bound),
    /// schedulers (naive scan vs fast path) and per-node fault plans,
    /// the parallel run's delivery, lookup-counter and applied-fault
    /// traces are bit-identical to the sequential reference.
    #[test]
    fn prop_fabric_equals_sequential(
        leaves in 2usize..=3,
        spines in 1usize..=2,
        host_ports in 1usize..=2,
        nshards in 2usize..=5,
        epoch_div in 1u64..=3,
        frames in 1usize..=5,
        fast_path in any::<bool>(),
        fault_kind in 0usize..=2,
        seed in any::<u64>(),
    ) {
        let ls = LeafSpine {
            leaves,
            spines,
            host_ports,
            link_delay: Time::from_us(2),
            fast_path,
        };
        let epoch = Time::from_ps(ls.default_epoch().as_ps() / epoch_div);
        let horizon = Time::from_us(40);
        let plan = |node: usize| plan_for_case(fault_kind, seed, &ls, node);

        let reference = ls.run_with_faults(1, epoch, horizon, frames, plan);
        if fault_kind == 0 {
            // Without faults the unicast workload is lossless.
            prop_assert_eq!(
                total_delivered(&reference),
                (ls.nhosts() * frames) as u64
            );
        }
        for t in &reference.results {
            prop_assert_eq!(t.lookup.floods, 0, "node {}: pre-taught, never floods", t.node);
        }

        let got = ls.run_with_faults(nshards, epoch, horizon, frames, plan);
        prop_assert_eq!(&got.results, &reference.results, "nshards={}", nshards);
        prop_assert_eq!(trace_signature(&got), trace_signature(&reference));
        prop_assert_eq!(got.stats.crossed, reference.stats.crossed);
        prop_assert_eq!(got.stats.epochs, reference.stats.epochs);
    }
}

/// A faulted run must actually lose frames (the property above would be
/// vacuous if the fault dimension never bit) — and still replay
/// bit-identically in parallel.
#[test]
fn faulted_run_loses_frames_and_stays_deterministic() {
    let ls = LeafSpine {
        leaves: 2,
        spines: 2,
        host_ports: 2,
        link_delay: Time::from_us(2),
        fast_path: true,
    };
    let epoch = ls.default_epoch();
    let horizon = Time::from_us(60);
    let frames = 8;
    // Leaf 0's uplink to spine 0 flaps right through the injection burst.
    let plan = |node: usize| {
        if node == 0 {
            FaultPlan::new(7).at(
                Time::ZERO,
                FaultKind::LinkDown {
                    port: ls.host_ports as u8,
                    duration: Time::from_us(10),
                },
            )
        } else {
            FaultPlan::none()
        }
    };
    let reference = ls.run_with_faults(1, epoch, horizon, frames, plan);
    let clean = ls.run(1, epoch, horizon, frames);
    assert_eq!(total_delivered(&clean), (ls.nhosts() * frames) as u64);
    assert!(
        total_delivered(&reference) < total_delivered(&clean),
        "the down window must swallow traffic"
    );
    assert!(
        !reference.results[0].faults.is_empty(),
        "the applied-fault trace is part of the harvest"
    );
    for nshards in [2, 4] {
        let got = ls.run_with_faults(nshards, epoch, horizon, frames, plan);
        assert_eq!(got.results, reference.results, "nshards={nshards}");
    }
}

/// Satellite: `kernel_stats()` under multi-chassis runs. Each chassis'
/// `kernel.*` counters are readable over its own MMIO stat block, stay
/// monotonic as the node's simulator advances (including *during* the
/// harvest, which itself runs the simulator to serve MMIO reads), and
/// the runner's roll-up equals the per-node sum.
#[test]
fn kernel_stats_are_mmio_monotonic_and_sum_across_shards() {
    let ls = LeafSpine {
        leaves: 2,
        spines: 2,
        host_ports: 2,
        link_delay: Time::from_us(2),
        fast_path: true,
    };
    let topo = ls.topology();
    let config = FabricConfig::new(2, ls.default_epoch());
    let report = run_fabric(
        &topo,
        &config,
        Time::from_us(40),
        |node| ls.build_node(node, 3),
        |_, sw: &mut ReferenceSwitch| {
            let before = dump_stats(&mut sw.chassis);
            sw.chassis.run_for(Time::from_us(5));
            let after = dump_stats(&mut sw.chassis);
            let sampled = sw.chassis.sim.kernel_stats();
            (before, after, sampled)
        },
    );

    let mut harvested_steps = 0u64;
    for (node, (before, after, sampled)) in report.results.iter().enumerate() {
        for key in ["kernel.steps", "kernel.skips"] {
            let (b, a) = (before[key], after[key]);
            assert!(b > 0, "node {node}: {key} counted work before harvest");
            assert!(
                a >= b,
                "node {node}: {key} must be monotonic over MMIO ({b} -> {a})"
            );
        }
        // The in-process sample postdates the second MMIO dump, whose
        // reads themselves step the simulator.
        assert!(
            sampled.steps >= after["kernel.steps"],
            "node {node}: MMIO view may not run ahead of the live counter"
        );
        harvested_steps += sampled.steps;
    }
    // The runner samples each node after its harvest returns, so the
    // roll-up dominates the harvest-time sum and equals its own
    // per-node breakdown exactly.
    let per_node: u64 = report.nodes.iter().map(|n| n.kernel.steps).sum();
    assert_eq!(report.stats.kernel.steps, per_node);
    assert!(report.stats.kernel.steps >= harvested_steps);
    let per_node_skips: u64 = report.nodes.iter().map(|n| n.kernel.skips).sum();
    assert_eq!(report.stats.kernel.skips, per_node_skips);
    // Both shards contributed.
    for shard in 0..config.nshards {
        let steps: u64 = report
            .nodes
            .iter()
            .filter(|n| n.shard == shard)
            .map(|n| n.kernel.steps)
            .sum();
        assert!(steps > 0, "shard {shard} ran chassis work");
    }
}
