//! Full-system integration: every project instantiates on every platform,
//! end-to-end traffic flows, and the simulation is bit-for-bit
//! deterministic across runs.

use netfpga_core::board::BoardSpec;
use netfpga_core::time::Time;
use netfpga_datapath::lpm::RouteEntry;
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::{
    AcceptanceTest, BlueSwitch, OsntTester, ReferenceNic, ReferenceRouter, ReferenceSwitch,
};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn frame(src: u8, dst: u8, len: usize) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .ipv4(
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
        )
        .udp(1000, 2000, &[])
        .pad_to(len)
        .build()
}

/// Every project builds and passes a smoke frame on every platform spec.
#[test]
fn all_projects_on_all_platforms() {
    for spec in [
        BoardSpec::sume(),
        BoardSpec::netfpga_10g(),
        BoardSpec::netfpga_1g_cml(),
    ] {
        // Acceptance: loopback.
        let mut a = AcceptanceTest::new(&spec, 4);
        a.chassis.send(0, frame(1, 2, 100));
        a.chassis.run_for(Time::from_us(20));
        assert_eq!(a.chassis.recv(0).len(), 1, "{:?} acceptance", spec.platform);

        // NIC: port -> host.
        let mut nic = ReferenceNic::new(&spec, 4);
        nic.chassis.send(1, frame(1, 2, 100));
        nic.chassis.run_for(Time::from_us(30));
        assert!(
            nic.chassis.dma.clone().unwrap().recv().is_some(),
            "{:?} nic",
            spec.platform
        );

        // Switch: flood.
        let mut sw = ReferenceSwitch::new(&spec, 4, 256, Time::from_ms(10));
        sw.chassis.send(0, frame(1, 2, 100));
        sw.chassis.run_for(Time::from_us(30));
        assert_eq!(sw.chassis.recv(1).len(), 1, "{:?} switch", spec.platform);

        // BlueSwitch: table miss to controller.
        let mut bs = BlueSwitch::new(&spec, 4, 2, 16);
        bs.chassis.send(0, frame(1, 2, 100));
        bs.chassis.run_for(Time::from_us(30));
        assert!(
            bs.chassis.dma.clone().unwrap().recv().is_some(),
            "{:?} blueswitch",
            spec.platform
        );

        // OSNT: self-loop a probe.
        let mut o = OsntTester::new(&spec, 2);
        let (to_board, from_board) = o.chassis.port_wires(0);
        o.chassis.add_link(
            "lo",
            from_board,
            to_board,
            netfpga_phy::LinkConfig::default(),
        );
        o.generators[0].start(netfpga_projects::osnt::GeneratorConfig::probe(
            1,
            netfpga_core::time::BitRate::mbps(500),
            128,
            3,
        ));
        let cap = o.captures[0].clone();
        assert!(
            o.chassis
                .run_while(Time::from_ms(5), move || cap.count() < 3),
            "{:?} osnt",
            spec.platform
        );
    }
}

/// A fully configured router forwards on all platforms.
#[test]
fn router_forwards_on_all_platforms() {
    for spec in [
        BoardSpec::sume(),
        BoardSpec::netfpga_10g(),
        BoardSpec::netfpga_1g_cml(),
    ] {
        let r = ReferenceRouter::new(&spec, 4);
        {
            let mut t = r.tables.borrow_mut();
            t.port_macs = (0..4).map(|i| mac(0xe0 + i)).collect();
            t.lpm.insert(
                "10.0.0.0/24".parse().unwrap(),
                RouteEntry {
                    next_hop: Ipv4Address::UNSPECIFIED,
                    port: 2,
                },
            );
            t.arp.insert(Ipv4Address::new(10, 0, 0, 7), mac(0x77));
        }
        let mut r = r;
        r.chassis.send(0, frame(1, 7, 200)); // dst 10.0.0.7: routed to port 2
        r.chassis.run_for(Time::from_us(50));
        let out = r.chassis.recv(2);
        assert_eq!(out.len(), 1, "{:?}", spec.platform);
    }
}

/// Identical runs produce identical outputs — the determinism guarantee
/// that makes the unified test environment trustworthy.
#[test]
fn full_scenario_is_deterministic() {
    let run = || {
        let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 256, Time::from_ms(1));
        let mut outputs = Vec::new();
        // A busy interleaved scenario: multiple stations, floods, learning.
        for round in 0..5u8 {
            for port in 0..4u8 {
                sw.chassis.send(
                    port as usize,
                    frame(port + 1, ((port + round) % 4) + 1, 80 + round as usize * 37),
                );
            }
            sw.chassis.run_for(Time::from_us(7));
            for port in 0..4 {
                for f in sw.chassis.recv(port) {
                    outputs.push((port, f));
                }
            }
        }
        sw.chassis.run_for(Time::from_us(50));
        for port in 0..4 {
            for f in sw.chassis.recv(port) {
                outputs.push((port, f));
            }
        }
        let stats = sw.core.borrow().stats();
        (outputs, stats)
    };
    let (out1, stats1) = run();
    let (out2, stats2) = run();
    assert_eq!(out1, out2);
    assert_eq!(stats1, stats2);
    assert!(!out1.is_empty());
}

/// MAC statistics agree with tester-visible frame counts across a load.
#[test]
fn mac_counters_consistent_with_traffic() {
    let mut a = AcceptanceTest::new(&BoardSpec::sume(), 2);
    let n = 50;
    for i in 0..n {
        a.chassis.send(0, frame(1, 2, 60 + (i % 8) as usize * 100));
    }
    a.chassis.run_for(Time::from_ms(1));
    let got = a.chassis.recv(0).len() as u64;
    assert_eq!(got, n);
    assert_eq!(a.chassis.rx_mac_stats(0).frames, n);
    assert_eq!(a.chassis.tx_mac_stats(0).frames, n);
    assert_eq!(a.counters[0].frames.get(), n);
    // Wire accounting includes 24B overhead per frame.
    let s = a.chassis.tx_mac_stats(0);
    assert_eq!(s.wire_bytes, s.bytes + 24 * n);
}
