//! Flow-monitoring plane property tests: the count-min sketch's one-sided
//! error guarantee, the heavy-hitter table's no-miss invariant, and
//! bit-identical flow accounting across every scheduler mode — checked
//! with proptest over randomized flow mixes.

use netfpga_core::board::BoardSpec;
use netfpga_core::sim::SchedulerMode;
use netfpga_core::time::Time;
use netfpga_flowmon::{CountMinSketch, FiveTuple, FlowmonConfig, HeavyHitters, SketchConfig};
use netfpga_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use netfpga_projects::ReferenceSwitch;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn tuple(i: u8) -> FiveTuple {
    FiveTuple {
        src_ip: u32::from_be_bytes([10, 0, 0, i]),
        dst_ip: u32::from_be_bytes([10, 0, 1, 1]),
        src_port: 1000 + u16::from(i),
        dst_port: 80,
        proto: 17,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Count-min never underestimates, and with the configured width the
    /// overestimate stays within the analytical bound `⌈εN⌉` where
    /// `ε = e / width`. The bound holds deterministically here because it
    /// caps the worst case: every other flow colliding in every row.
    #[test]
    fn prop_cm_estimate_one_sided_and_bounded(
        counts in proptest::collection::vec(1u64..80, 1..32),
        seed in 0u64..1000,
    ) {
        let cfg = SketchConfig { width: 2048, depth: 4, seed };
        let mut cm = CountMinSketch::new(cfg);
        for (i, &n) in counts.iter().enumerate() {
            cm.record(&tuple(i as u8), n);
        }
        let bound = cm.error_bound();
        for (i, &n) in counts.iter().enumerate() {
            let est = cm.estimate(&tuple(i as u8));
            prop_assert!(est >= n, "estimate {est} under true count {n}");
            prop_assert!(
                est <= n + bound,
                "estimate {est} exceeds true {n} + bound {bound}"
            );
        }
    }

    /// The replace-min heavy-hitter table never misses a large flow: any
    /// flow whose true packet count exceeds the table's final minimum
    /// tracked estimate must be in the table. (With a 2048-wide sketch and
    /// at most 40 flows the estimates are exact, so the invariant is
    /// checked against true counts.)
    #[test]
    fn prop_heavy_hitters_no_miss_above_final_min(
        stream in proptest::collection::vec(0u8..40, 1..400),
        capacity in 2usize..12,
        seed in 0u64..1000,
    ) {
        let mut cm = CountMinSketch::new(SketchConfig { width: 2048, depth: 4, seed });
        let mut hh = HeavyHitters::new(capacity);
        let mut truth: BTreeMap<u8, u64> = BTreeMap::new();
        for &f in &stream {
            let est = cm.record(&tuple(f), 1);
            hh.update(tuple(f), 60, est);
            *truth.entry(f).or_default() += 1;
        }
        let min = hh.min_estimate().unwrap_or(0);
        let tracked: Vec<FiveTuple> = hh.entries().iter().map(|r| r.flow).collect();
        for (&f, &n) in &truth {
            if n > min {
                prop_assert!(
                    tracked.contains(&tuple(f)),
                    "flow {f} with {n} packets missing though min tracked is {min}"
                );
            }
        }
    }

    /// End-to-end flow accounting is bit-identical under every scheduler
    /// mode and with idle-skip on or off: same tracked flows, same packet
    /// and byte totals, same sketch estimates, same top-talker ranking.
    #[test]
    fn prop_flow_accounting_identical_across_schedulers(
        frames in proptest::collection::vec((0usize..4, 0u8..6, 40usize..200), 1..20),
    ) {
        let observe = |mode: SchedulerMode, idle_skip: bool| {
            let mut sw = ReferenceSwitch::with_flowmon(
                &BoardSpec::sume(), 4, 256, Time::from_ms(100), false,
                FlowmonConfig::default(),
            );
            sw.chassis.sim.set_scheduler_mode(mode);
            sw.chassis.sim.set_idle_skip(idle_skip);
            for &(port, flow, len) in &frames {
                let f = PacketBuilder::new()
                    .eth(mac(flow + 1), mac(0xee))
                    .ipv4(
                        Ipv4Address::new(10, 0, 0, flow),
                        Ipv4Address::new(10, 0, 1, 1),
                    )
                    .udp(1000 + u16::from(flow), 80, &vec![flow; len])
                    .build();
                sw.chassis.send(port, f);
            }
            sw.chassis.run_for(Time::from_ms(1));
            for port in 0..4 {
                sw.chassis.recv(port);
            }
            let mon = sw.flowmon.clone().unwrap();
            (
                mon.flows(),
                mon.top_talkers(8),
                mon.packets(),
                mon.bytes(),
                mon.non_ip(),
                mon.evictions(),
            )
        };
        let baseline = observe(SchedulerMode::Scan, false);
        for mode in [SchedulerMode::Scan, SchedulerMode::Calendar, SchedulerMode::Heap] {
            for idle_skip in [false, true] {
                if mode == SchedulerMode::Scan && !idle_skip {
                    continue;
                }
                let got = observe(mode, idle_skip);
                prop_assert_eq!(
                    &baseline, &got,
                    "accounting diverged under {:?} idle_skip={}", mode, idle_skip
                );
            }
        }
    }
}
