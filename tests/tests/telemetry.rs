//! The unified telemetry plane, end to end: the registry view must be a
//! window onto the SAME cells the legacy register blocks read (not a
//! copy), the MMIO stat block must agree with both, and fault-plane link
//! events must reach the host through the event ring.

use netfpga_core::board::BoardSpec;
use netfpga_core::telemetry::EventKind;
use netfpga_core::time::Time;
use netfpga_faults::{FaultKind, FaultPlan};
use netfpga_host::{dump_stats, poll_events};
use netfpga_packet::{EthernetAddress, PacketBuilder};
use netfpga_projects::reference_switch::{ReferenceSwitch, LOOKUP_BASE, STATS_BASE};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn frame(src: u8, dst: u8) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .raw(netfpga_packet::EtherType::Ipv4, &[src; 50])
        .build()
}

/// Equivalence pin: run fixed traffic through the reference switch and
/// require every legacy counter — the statistics registers, the lookup
/// registers, and the per-port MAC stats — to read bit-identically
/// through its new registry path, in-process and over MMIO.
#[test]
fn registry_paths_equal_legacy_counters_bit_for_bit() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    // Fixed workload: a flood, a learned unicast each way, a broadcast.
    sw.chassis.send(0, frame(1, 2));
    sw.chassis.run_for(Time::from_us(10));
    sw.chassis.send(2, frame(2, 1));
    sw.chassis.run_for(Time::from_us(10));
    sw.chassis.send(0, frame(1, 2));
    sw.chassis.run_for(Time::from_us(10));
    let bcast = PacketBuilder::new()
        .eth(mac(3), EthernetAddress::BROADCAST)
        .raw(netfpga_packet::EtherType::Arp, &[0; 46])
        .build();
    sw.chassis.send(3, bcast);
    sw.chassis.run_for(Time::from_us(20));

    let reg = sw.chassis.telemetry.clone();

    // Legacy stats registers vs registry paths (same cells, so exact).
    assert_eq!(
        reg.get("rx_stats.total_packets"),
        Some(u64::from(sw.chassis.read32(STATS_BASE)))
    );
    assert_eq!(
        reg.get("rx_stats.total_bytes"),
        Some(u64::from(sw.chassis.read32(STATS_BASE + 0x4)))
    );
    for port in 0..4u32 {
        assert_eq!(
            reg.get(&format!("rx_stats.port{port}.packets")),
            Some(u64::from(sw.chassis.read32(STATS_BASE + 0x8 + 8 * port))),
            "port {port} packets"
        );
        assert_eq!(
            reg.get(&format!("rx_stats.port{port}.bytes")),
            Some(u64::from(sw.chassis.read32(STATS_BASE + 0xC + 8 * port))),
            "port {port} bytes"
        );
    }

    // Legacy lookup registers vs registry paths.
    assert_eq!(
        reg.get("lookup.hits"),
        Some(u64::from(sw.chassis.read32(LOOKUP_BASE)))
    );
    assert_eq!(
        reg.get("lookup.floods"),
        Some(u64::from(sw.chassis.read32(LOOKUP_BASE + 4)))
    );
    assert_eq!(
        reg.get("lookup.learned"),
        Some(u64::from(sw.chassis.read32(LOOKUP_BASE + 8)))
    );
    assert!(
        reg.get("lookup.hits").unwrap() >= 2,
        "workload exercised the fast path"
    );

    // Per-port MAC stats vs registry paths.
    for port in 0..4 {
        let rx = sw.chassis.rx_mac_stats(port);
        let tx = sw.chassis.tx_mac_stats(port);
        for (path, legacy) in [
            (format!("port{port}.mac.rx.frames"), rx.frames),
            (format!("port{port}.mac.rx.bytes"), rx.bytes),
            (format!("port{port}.mac.rx.wire_bytes"), rx.wire_bytes),
            (format!("port{port}.mac.rx.bad_fcs"), rx.bad_fcs),
            (format!("port{port}.mac.tx.frames"), tx.frames),
            (format!("port{port}.mac.tx.bytes"), tx.bytes),
        ] {
            assert_eq!(reg.get(&path), Some(legacy), "{path}");
        }
    }

    // And the MMIO dump agrees with the in-process registry on every path.
    let snapshot = sw.chassis.telemetry.snapshot();
    let dumped = dump_stats(&mut sw.chassis);
    assert_eq!(dumped.len(), snapshot.len());
    for (path, value) in snapshot {
        if path.starts_with("kernel.") {
            // The kernel's own work counters advance while the MMIO dump
            // runs the simulator — the dump IS workload to them — so a
            // same-pass comparison can only pin monotonicity.
            assert!(dumped[&path] >= value & 0xffff_ffff, "{path} over MMIO");
        } else {
            assert_eq!(dumped[&path], value & 0xffff_ffff, "{path} over MMIO");
        }
    }
}

/// A clear through the registry is a clear of the legacy cell, and vice
/// versa — shared state, not synchronized copies.
#[test]
fn clears_are_visible_both_ways() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    sw.chassis.send(0, frame(1, 2));
    sw.chassis.run_for(Time::from_us(10));
    assert!(sw.chassis.read32(STATS_BASE) > 0);
    assert!(sw.chassis.telemetry.clear("rx_stats.total_packets"));
    assert_eq!(
        sw.chassis.read32(STATS_BASE),
        0,
        "registry clear seen by legacy block"
    );
    assert!(
        sw.chassis.read32(STATS_BASE + 0x8) > 0,
        "per-offset semantics: siblings survive"
    );
    sw.chassis.write32(STATS_BASE + 0x8, 0);
    assert_eq!(
        sw.chassis.telemetry.get("rx_stats.port0.packets"),
        Some(0),
        "legacy write-to-clear seen by registry"
    );
}

/// A fault-plane link flap travels the whole way: injector → event ring →
/// MMIO registers → host `poll_events`, with the flap counted in the
/// registry tree too.
#[test]
fn poll_events_observes_injected_link_flap() {
    let plan = FaultPlan::new(0x7E1E).at(
        Time::from_us(10),
        FaultKind::LinkDown {
            port: 2,
            duration: Time::from_us(15),
        },
    );
    let mut sw =
        ReferenceSwitch::with_faults(&BoardSpec::sume(), 4, 1024, Time::from_ms(100), false, plan);

    // Nothing before the flap fires.
    sw.chassis.run_for(Time::from_us(5));
    assert!(poll_events(&mut sw.chassis).is_empty());

    // Past the window: down and up transitions, in order, on port 2.
    sw.chassis.run_for(Time::from_us(40));
    let events = poll_events(&mut sw.chassis);
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::LinkDown, EventKind::LinkUp],
        "{events:?}"
    );
    assert!(events.iter().all(|e| e.port == 2));
    assert!(events[0].at < events[1].at, "timestamps ordered");

    // The drain consumed the ring; the flap stays counted in the tree.
    assert!(poll_events(&mut sw.chassis).is_empty());
    assert_eq!(dump_stats(&mut sw.chassis)["faults.flaps"], 1);

    // A runtime flap after the drain produces a fresh pair.
    sw.chassis
        .faults
        .clone()
        .expect("fault plane")
        .inject(FaultKind::LinkDown {
            port: 0,
            duration: Time::from_us(5),
        });
    sw.chassis.run_for(Time::from_us(20));
    let events = poll_events(&mut sw.chassis);
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| e.port == 0));
}
