//! Embedded firmware on the soft-core, running next to a real project —
//! the paper's "embedded code (for a soft-core processor)" in action.
//!
//! The firmware here is a flood watchdog for the reference switch: it
//! polls the lookup block's flood counter through the on-card MMIO window
//! (no PCIe round-trips — that is the soft core's advantage over host
//! software), mirrors the count into a mailbox register block, and flushes
//! the learning table once floods cross a threshold.

use netfpga_core::board::BoardSpec;
use netfpga_core::regs::{shared, RamRegisters};
use netfpga_core::time::Time;
use netfpga_packet::{EthernetAddress, PacketBuilder};
use netfpga_projects::reference_switch::{ReferenceSwitch, LOOKUP_BASE};
use netfpga_soc::{assemble, SoftCore, MMIO_BASE};

fn mac(x: u8) -> EthernetAddress {
    EthernetAddress::new(2, 0, 0, 0, 0, x)
}

fn frame(src: u8, dst: u8) -> Vec<u8> {
    PacketBuilder::new()
        .eth(mac(src), mac(dst))
        .raw(netfpga_packet::EtherType::Ipv4, &[src; 46])
        .build()
}

/// Mailbox block the firmware writes its observations into.
const MAILBOX_BASE: u32 = 0x5000;

fn watchdog_firmware(threshold: u32) -> Vec<netfpga_soc::Instr> {
    let floods_addr = MMIO_BASE + LOOKUP_BASE + 4;
    let flush_addr = MMIO_BASE + LOOKUP_BASE;
    let mailbox = MMIO_BASE + MAILBOX_BASE;
    assemble(&format!(
        r"
            li r1, {floods_addr}   ; lookup flood counter
            li r2, {mailbox}       ; mailbox block
            li r3, {flush_addr}    ; write = flush table
            li r4, {threshold}
        poll:
            lw r5, (r1)            ; read flood count (on-card, zero latency)
            sw r5, (r2)            ; mirror into mailbox word 0
            bltu r5, r4, poll
            sw r0, (r3)            ; threshold crossed: flush the table
            li r6, 1
            sw r6, 4(r2)           ; mailbox word 1 = 'flushed' flag
            halt
        "
    ))
    .unwrap()
}

#[test]
fn flood_watchdog_flushes_table() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    sw.chassis.map.mount(
        "mailbox",
        MAILBOX_BASE,
        0x100,
        shared(RamRegisters::new(0x100)),
    );
    let cpu = SoftCore::new(
        "watchdog",
        watchdog_firmware(3),
        256,
        Some(sw.chassis.map.clone()),
        1,
    );
    sw.chassis.add_module(cpu);

    // Two floods: below threshold, firmware keeps polling.
    sw.chassis.send(0, frame(1, 0x21));
    sw.chassis.send(0, frame(1, 0x22));
    sw.chassis.run_for(Time::from_us(30));
    assert_eq!(
        sw.chassis.map.read(MAILBOX_BASE),
        2,
        "mailbox mirrors floods"
    );
    assert_eq!(sw.chassis.map.read(MAILBOX_BASE + 4), 0, "not flushed yet");
    assert_eq!(
        sw.core.borrow().table_size(Time::from_us(30)),
        1,
        "learned src"
    );

    // Third flood crosses the threshold: firmware flushes autonomously.
    sw.chassis.send(0, frame(1, 0x23));
    sw.chassis.run_for(Time::from_us(30));
    assert_eq!(sw.chassis.map.read(MAILBOX_BASE), 3);
    assert_eq!(sw.chassis.map.read(MAILBOX_BASE + 4), 1, "flushed flag set");
    assert_eq!(
        sw.core.borrow().table_size(sw.chassis.sim.now()),
        0,
        "table flushed by firmware, no host involved"
    );
}

/// The firmware sees register changes with zero PCIe latency: its mailbox
/// snapshot is updated within microseconds of the datapath event, while a
/// host poll pays the MMIO round trip. (Both observe eventually; the test
/// pins the on-card path's promptness.)
#[test]
fn firmware_polls_faster_than_host_could() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    sw.chassis.map.mount(
        "mailbox",
        MAILBOX_BASE,
        0x100,
        shared(RamRegisters::new(0x100)),
    );
    let cpu = SoftCore::new(
        "watchdog",
        watchdog_firmware(1_000_000), // never flush: pure monitor
        256,
        Some(sw.chassis.map.clone()),
        1,
    );
    sw.chassis.add_module(cpu);
    sw.chassis.send(0, frame(1, 9));
    // Within 10 us of simulated time the mailbox already reflects the
    // flood; a single host MMIO read alone costs ~0.9 us plus driver time,
    // and a poll loop from the host pays that per sample.
    sw.chassis.run_for(Time::from_us(10));
    assert_eq!(sw.chassis.map.read(MAILBOX_BASE), 1);
}

/// Firmware and host software can manage the same design concurrently:
/// host reads the same mailbox over PCIe MMIO.
#[test]
fn host_reads_firmware_mailbox_over_pcie() {
    let mut sw = ReferenceSwitch::new(&BoardSpec::sume(), 4, 1024, Time::from_ms(100));
    sw.chassis.map.mount(
        "mailbox",
        MAILBOX_BASE,
        0x100,
        shared(RamRegisters::new(0x100)),
    );
    let cpu = SoftCore::new(
        "watchdog",
        watchdog_firmware(2),
        256,
        Some(sw.chassis.map.clone()),
        1,
    );
    sw.chassis.add_module(cpu);
    sw.chassis.send(0, frame(1, 0x31));
    sw.chassis.send(0, frame(2, 0x32));
    sw.chassis.run_for(Time::from_us(40));
    // Host-side view through the PCIe MMIO path.
    assert_eq!(sw.chassis.read32(MAILBOX_BASE), 2);
    assert_eq!(
        sw.chassis.read32(MAILBOX_BASE + 4),
        1,
        "host sees the flush flag"
    );
}
